// Package loadgen drives configurable client fleets against a synserve
// instance and reports exact latency quantiles, throughput, and a status
// breakdown, with an SLO gate for pass/fail use in CI and cmd/synload.
//
// A run is a fixed fleet of concurrent clients replaying a weighted request
// mix — cached and cache-busting reads, pushdown-pruned and full-scan
// aggregations, legacy table endpoints — until a request budget or wall
// deadline is exhausted. Every client draws from its own deterministic
// stream (internal/rng derived from Config.Seed), so two runs with the same
// seed replay the same request sequence per client. Latencies are recorded
// per client without locks and merged once at the end, so the measured
// quantiles are exact, not histogram-bucketed approximations.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/rng"
)

// Request is one entry in a load mix. Path or PathFn names the target;
// PathFn receives a per-request sequence number so a mix entry can be
// cache-busting (vary the query string) while staying deterministic. A nil
// Body means no request body (GET unless Method says otherwise).
type Request struct {
	Name   string
	Method string // defaults to GET, or POST when Body is set
	Path   string
	PathFn func(i uint64) string
	Body   func(i uint64) []byte
	Weight int // relative frequency in the mix; <=0 means 1
}

func (r Request) method() string {
	if r.Method != "" {
		return r.Method
	}
	if r.Body != nil {
		return http.MethodPost
	}
	return http.MethodGet
}

func (r Request) path(i uint64) string {
	if r.PathFn != nil {
		return r.PathFn(i)
	}
	return r.Path
}

// Config describes one load run.
type Config struct {
	BaseURL  string
	Clients  int
	Requests uint64        // total request budget; 0 = run until Duration
	Duration time.Duration // wall deadline; 0 = run until Requests
	Mix      []Request
	Timeout  time.Duration // per-request timeout (0 = 10s)
	Seed     uint64
	Registry *obs.Registry // optional: loadgen.* counters and latency histogram
}

// Result is the merged outcome of a run.
type Result struct {
	Requests       uint64            `json:"requests"`
	Duration       float64           `json:"duration_s"`
	Throughput     float64           `json:"throughput_rps"`
	P50Ms          float64           `json:"p50_ms"`
	P90Ms          float64           `json:"p90_ms"`
	P99Ms          float64           `json:"p99_ms"`
	MaxMs          float64           `json:"max_ms"`
	Status         map[int]uint64    `json:"status"`
	ByName         map[string]uint64 `json:"by_name"`
	Rejected       uint64            `json:"rejected"` // 429 responses
	Errors         uint64            `json:"errors"`   // transport errors + 5xx
	RetryAfterSeen bool              `json:"retry_after_seen"`
}

// ErrorRate is Errors over total requests (0 when nothing ran).
func (r Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// RejectShare is 429s over total requests (0 when nothing ran).
func (r Result) RejectShare() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Requests)
}

// SLO is a pass/fail gate over a Result. Zero-valued fields are unchecked.
type SLO struct {
	MaxP99         time.Duration // p99 latency ceiling
	MaxErrorRate   float64       // transport errors + 5xx, as a share of requests
	MaxRejectShare float64       // 429s as a share of requests
	MinThroughput  float64       // requests per second floor
}

// Check returns a joined error describing every violated objective, or nil.
func (r Result) Check(slo SLO) error {
	var errs []error
	if slo.MaxP99 > 0 && r.P99Ms > float64(slo.MaxP99)/1e6 {
		errs = append(errs, fmt.Errorf("p99 %.2fms exceeds SLO %.2fms",
			r.P99Ms, float64(slo.MaxP99)/1e6))
	}
	if slo.MaxErrorRate > 0 && r.ErrorRate() > slo.MaxErrorRate {
		errs = append(errs, fmt.Errorf("error rate %.4f exceeds SLO %.4f (%d errors)",
			r.ErrorRate(), slo.MaxErrorRate, r.Errors))
	}
	if slo.MaxRejectShare > 0 && r.RejectShare() > slo.MaxRejectShare {
		errs = append(errs, fmt.Errorf("429 share %.4f exceeds SLO %.4f (%d rejected)",
			r.RejectShare(), slo.MaxRejectShare, r.Rejected))
	}
	if slo.MinThroughput > 0 && r.Throughput < slo.MinThroughput {
		errs = append(errs, fmt.Errorf("throughput %.1f rps below SLO %.1f",
			r.Throughput, slo.MinThroughput))
	}
	return errors.Join(errs...)
}

// clientStats is one client's lock-free tally, merged after the run.
type clientStats struct {
	latencies  []time.Duration
	status     map[int]uint64
	byName     map[string]uint64
	errors     uint64
	retryAfter bool
}

// Run replays cfg.Mix against cfg.BaseURL and blocks until the request
// budget or deadline is exhausted (or ctx is canceled — a cancellation is
// not an error; the partial result is returned). Transport errors count
// toward Result.Errors rather than aborting the run: under deliberate
// overload some requests are supposed to fail.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, errors.New("loadgen: BaseURL required")
	}
	if len(cfg.Mix) == 0 {
		return Result{}, errors.New("loadgen: empty request mix")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Requests == 0 && cfg.Duration == 0 {
		return Result{}, errors.New("loadgen: need Requests or Duration")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	// One transport for the whole fleet, sized so every client keeps its
	// connection alive — fleet-scale runs must measure the server, not
	// connection churn.
	tr := &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr, Timeout: cfg.Timeout}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	mReqs := cfg.Registry.Counter("loadgen.requests")
	mErrs := cfg.Registry.Counter("loadgen.errors")
	mLat := cfg.Registry.Histogram("loadgen.latency_ns")

	// Cumulative weights for O(log n) weighted choice.
	cum := make([]int, len(cfg.Mix))
	total := 0
	for i, m := range cfg.Mix {
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		cum[i] = total
	}

	var seq atomic.Uint64 // global request sequence, shared across clients
	stats := make([]clientStats, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(cfg.Seed).DeriveN("client", uint64(c))
			st := &stats[c]
			st.status = make(map[int]uint64)
			st.byName = make(map[string]uint64)
			for {
				if ctx.Err() != nil {
					return
				}
				i := seq.Add(1) - 1
				if cfg.Requests > 0 && i >= cfg.Requests {
					return
				}
				pick := r.Intn(total)
				idx := sort.SearchInts(cum, pick+1)
				m := cfg.Mix[idx]
				st.byName[m.Name]++
				mReqs.Inc()

				var body io.Reader
				if m.Body != nil {
					body = bytes.NewReader(m.Body(i))
				}
				req, err := http.NewRequestWithContext(ctx, m.method(), cfg.BaseURL+m.path(i), body)
				if err != nil {
					st.errors++
					mErrs.Inc()
					continue
				}
				if body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
				t0 := time.Now()
				resp, err := hc.Do(req)
				el := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						return // deadline hit mid-request, not a server fault
					}
					st.errors++
					mErrs.Inc()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.latencies = append(st.latencies, el)
				mLat.Observe(el.Nanoseconds())
				st.status[resp.StatusCode]++
				if resp.StatusCode >= 500 {
					st.errors++
					mErrs.Inc()
				}
				if resp.Header.Get("Retry-After") != "" {
					st.retryAfter = true
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	return merge(stats, elapsed), nil
}

// merge folds the per-client tallies into one Result with exact quantiles.
func merge(stats []clientStats, elapsed time.Duration) Result {
	res := Result{
		Duration: elapsed.Seconds(),
		Status:   make(map[int]uint64),
		ByName:   make(map[string]uint64),
	}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.latencies...)
		for code, n := range st.status {
			res.Status[code] += n
			if code == http.StatusTooManyRequests {
				res.Rejected += n
			}
		}
		for name, n := range st.byName {
			res.ByName[name] += n
		}
		res.Errors += st.errors
		res.RetryAfterSeen = res.RetryAfterSeen || st.retryAfter
	}
	res.Requests = uint64(len(all)) + res.Errors
	if elapsed > 0 {
		res.Throughput = float64(res.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50Ms = quantile(all, 0.50)
		res.P90Ms = quantile(all, 0.90)
		res.P99Ms = quantile(all, 0.99)
		res.MaxMs = float64(all[len(all)-1]) / 1e6
	}
	return res
}

// quantile reads the exact q-quantile (nearest-rank) from sorted latencies,
// in milliseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e6
}
