package inflate

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"math/rand"
	"testing"

	"github.com/synscan/synscan/internal/alloctest"
)

// deflate compresses data with the standard library writer at the given
// level — the exact producer the archive writer uses.
func deflate(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corpus builds inputs that force every block type out of the writer:
// stored (incompressible at level 0 and random data), fixed and dynamic
// Huffman, runs that exercise long matches and every repeat code.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(41))
	random := make([]byte, 96<<10)
	rng.Read(random)

	runs := make([]byte, 64<<10)
	for i := range runs {
		runs[i] = byte(i / 997)
	}

	text := bytes.Repeat([]byte("SYN scan telescope record: src=203.0.113.7 dst=198.51.100.9 port=443 flags=S\n"), 700)

	skewed := make([]byte, 48<<10)
	for i := range skewed {
		// Heavily skewed symbol distribution: long Huffman codes for the
		// rare symbols, exercising deep table entries.
		if rng.Intn(100) == 0 {
			skewed[i] = byte(rng.Intn(256))
		} else {
			skewed[i] = byte(rng.Intn(4))
		}
	}

	return map[string][]byte{
		"empty":  {},
		"single": {0x42},
		"random": random,
		"runs":   runs,
		"text":   text,
		"skewed": skewed,
	}
}

// TestDecodeMatchesFlate is the differential contract: every stream the
// standard writer produces, at every level, decodes byte-identically to
// compress/flate — through one reused Decoder.
func TestDecodeMatchesFlate(t *testing.T) {
	var d Decoder
	levels := []int{flate.NoCompression, flate.BestSpeed, 3, 6, flate.BestCompression, flate.HuffmanOnly}
	for name, data := range corpus() {
		for _, level := range levels {
			comp := deflate(t, data, level)
			got, err := d.AppendDecode(nil, comp, len(data)+1)
			if err != nil {
				t.Fatalf("%s/level=%d: %v", name, level, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/level=%d: decode mismatch (%d bytes, want %d)", name, level, len(got), len(data))
			}
		}
	}
}

// TestAppendDecodeAppends: output lands after existing dst content, and the
// limit counts the whole slice.
func TestAppendDecodeAppends(t *testing.T) {
	var d Decoder
	data := []byte("payload after prefix")
	comp := deflate(t, data, 6)
	prefix := []byte("prefix:")
	got, err := d.AppendDecode(prefix, comp, len(prefix)+len(data)+1)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("prefix:"), data...)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if _, err := d.AppendDecode(prefix, comp, len(prefix)+len(data)-1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("limit counting prefix: err = %v, want ErrTooLarge", err)
	}
}

// TestLimit: decoding stops with ErrTooLarge the moment output would exceed
// the cap, for both literal-heavy and match-heavy streams.
func TestLimit(t *testing.T) {
	var d Decoder
	for name, data := range corpus() {
		if len(data) < 2 {
			continue
		}
		comp := deflate(t, data, 6)
		if _, err := d.AppendDecode(nil, comp, len(data)-1); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("%s: err = %v, want ErrTooLarge", name, err)
		}
		// Exact-size limit succeeds: the cap is a ceiling, not a headroom.
		if _, err := d.AppendDecode(nil, comp, len(data)); err != nil {
			t.Fatalf("%s: exact limit failed: %v", name, err)
		}
	}
}

// TestTruncatedAndCorrupt: damaged streams error, never panic, never succeed
// with silently wrong lengths the caller can't detect.
func TestTruncatedAndCorrupt(t *testing.T) {
	var d Decoder
	data := corpus()["text"]
	comp := deflate(t, data, 6)
	for cut := 0; cut < len(comp); cut += 17 {
		if _, err := d.AppendDecode(nil, comp[:cut], len(data)+1); err == nil {
			t.Fatalf("truncation at %d decoded cleanly to full length", cut)
		}
	}
	for i := 0; i < len(comp); i += 13 {
		bad := append([]byte(nil), comp...)
		bad[i] ^= 0xff
		got, err := d.AppendDecode(nil, bad, len(data)+1)
		// A flip may survive decode (it only changes literals); then the
		// output length/content differs and the archive's RawLen + record
		// CRC checks catch it. What must not happen is a panic.
		if err == nil && len(got) == len(data) && bytes.Equal(got, data) {
			t.Fatalf("flip at %d decoded to identical output", i)
		}
	}
}

// TestDegenerateDistanceCode: compress/flate emits dynamic blocks whose
// distance alphabet has a single 1-bit code (an incomplete coding DEFLATE
// explicitly allows). A stream of distinct bytes with one long match forces
// that shape; it must decode.
func TestDegenerateDistanceCode(t *testing.T) {
	var d Decoder
	data := make([]byte, 0, 3000)
	for i := 0; i < 300; i++ {
		data = append(data, byte(i), byte(i>>3), byte(i*7))
	}
	data = append(data, data[:300]...)
	comp := deflate(t, data, flate.BestCompression)
	got, err := d.AppendDecode(nil, comp, len(data)+1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode mismatch")
	}
}

// TestAllocBudgetInflate: a warmed Decoder with a pre-sized dst performs
// zero allocations per stream — the property the archive's
// "archive-block-read" budget rests on.
func TestAllocBudgetInflate(t *testing.T) {
	var d Decoder
	data := corpus()["text"]
	comp := deflate(t, data, 6)
	dst := make([]byte, 0, len(data)+1)
	alloctest.Check(t, "inflate-stream", 0, func() {
		out, err := d.AppendDecode(dst[:0], comp, len(data)+1)
		if err != nil || len(out) != len(data) {
			t.Fatalf("decode failed: %v (%d bytes)", err, len(out))
		}
	})
}

// FuzzInflate drives both directions: arbitrary bytes compressed with the
// standard writer must round-trip through the Decoder, and arbitrary bytes
// treated as a DEFLATE stream must never panic — and whenever compress/flate
// accepts them, the Decoder must produce identical output.
func FuzzInflate(f *testing.F) {
	f.Add([]byte{}, 6)
	f.Add([]byte("hello hello hello hello"), 1)
	f.Add(bytes.Repeat([]byte{0xab}, 4096), 9)
	f.Add([]byte{0x03, 0x00}, 6) // empty fixed-Huffman stream
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		var d Decoder

		// Direction 1: round-trip through the standard writer.
		lvl := level%10 - 1 // [-1,8]: HuffmanOnly through BestCompression-1
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, lvl)
		if err == nil {
			w.Write(data)
			w.Close()
			got, err := d.AppendDecode(nil, buf.Bytes(), len(data)+1)
			if err != nil {
				t.Fatalf("level %d: %v", lvl, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("level %d: round-trip mismatch", lvl)
			}
		}

		// Direction 2: the raw input as a stream. Cap output to keep crafted
		// expansion bombs bounded, exactly as the archive does.
		const cap = 1 << 20
		got, gotErr := d.AppendDecode(nil, data, cap)
		ref, refErr := io.ReadAll(io.LimitReader(flate.NewReader(bytes.NewReader(data)), cap))
		if refErr == nil && len(ref) < cap {
			if gotErr != nil {
				t.Fatalf("flate accepts, inflate rejects: %v", gotErr)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("output mismatch: %d vs %d bytes", len(got), len(ref))
			}
		}
	})
}
