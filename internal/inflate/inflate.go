// Package inflate is a reusable-state DEFLATE (RFC 1951) decompressor for
// the archive's pooled block reads.
//
// The standard library's compress/flate allocates its Huffman overflow link
// tables on every dynamic-Huffman stream — ~17 allocations per archive
// block, even with the flate.Reader itself pooled and Reset. This decoder
// exists to close that gap: all decode state (the flat Huffman lookup
// tables, the scratch code-length array) lives in the Decoder and is reused
// across streams, so a warmed Decoder performs zero heap allocations per
// block. That is what makes the "archive-block-read" allocation budget
// (internal/alloctest) hold.
//
// Scope is deliberately narrow: whole-buffer decompression of a complete
// DEFLATE stream into an append-target, with an output limit. No streaming,
// no dictionary preset. Correctness is pinned differentially against
// compress/flate — every stream the standard writer produces (all levels,
// stored/fixed/dynamic blocks) must decode byte-identically, enforced by the
// package tests and FuzzInflate.
package inflate

import (
	"errors"
	"math/bits"
)

var (
	// ErrCorrupt reports a malformed or truncated DEFLATE stream.
	ErrCorrupt = errors.New("inflate: corrupt deflate stream")
	// ErrTooLarge reports that decoding would exceed the caller's limit.
	ErrTooLarge = errors.New("inflate: output exceeds limit")
)

// maxCodeLen is the longest Huffman code DEFLATE permits.
const maxCodeLen = 15

// table is one canonical Huffman decode table: a flat lookup sized 1<<max
// (max = longest code in use), indexed by the next max input bits in stream
// (LSB-first) order. Entries pack symbol<<4 | codeLength; 0 marks a bit
// pattern no code covers (possible in the degenerate incomplete codings
// DEFLATE allows — hitting one during decode is ErrCorrupt). The entries
// backing array is retained across builds; steady-state rebuilds allocate
// nothing.
type table struct {
	entries []uint16
	mask    uint32
	max     uint
}

// build constructs the canonical code table for the given per-symbol code
// lengths (0 = symbol absent). Over-subscribed codings are rejected;
// incomplete codings are permitted (their gaps error at decode time), which
// matches the degenerate single-code streams compress/flate emits.
func (t *table) build(lengths []byte) error {
	var count [maxCodeLen + 1]int
	max := 0
	for _, n := range lengths {
		if n == 0 {
			continue
		}
		count[n]++
		if int(n) > max {
			max = int(n)
		}
	}
	if max == 0 {
		// No codes at all. Keep a 1-entry invalid table: any decode errors.
		t.entries = append(t.entries[:0], 0, 0)
		t.mask = 1
		t.max = 1
		return nil
	}
	// Over-subscription check and canonical first-code computation.
	left := 1
	var next [maxCodeLen + 1]int
	code := 0
	for n := 1; n <= max; n++ {
		left <<= 1
		left -= count[n]
		if left < 0 {
			return ErrCorrupt
		}
		code = (code + count[n-1]) << 1
		next[n] = code
	}

	size := 1 << max
	if cap(t.entries) < size {
		t.entries = make([]uint16, size)
	} else {
		t.entries = t.entries[:size]
		clear(t.entries)
	}
	t.mask = uint32(size - 1)
	t.max = uint(max)
	for sym, n := range lengths {
		if n == 0 {
			continue
		}
		c := next[n]
		next[n]++
		// Codes are MSB-first; the bit stream arrives LSB-first, so the
		// table is indexed by the bit-reversed code, replicated across
		// every possible suffix.
		rev := int(bits.Reverse16(uint16(c)) >> (16 - n))
		e := uint16(sym)<<4 | uint16(n)
		for i := rev; i < size; i += 1 << n {
			t.entries[i] = e
		}
	}
	return nil
}

// Decoder holds all decompression state. The zero value is ready; reuse one
// Decoder per goroutine to amortize its table storage across streams. Not
// safe for concurrent use.
type Decoder struct {
	src    []byte
	pos    int
	bitbuf uint64
	nbits  uint

	litlen, dist, clen table
	fixedLit, fixedDst table
	fixedBuilt         bool

	lens [288 + 32]byte
}

// fill tops up the bit buffer from the source (LSB-first).
func (d *Decoder) fill() {
	for d.nbits <= 56 && d.pos < len(d.src) {
		d.bitbuf |= uint64(d.src[d.pos]) << d.nbits
		d.pos++
		d.nbits += 8
	}
}

// getBits consumes n bits (n ≤ 32).
func (d *Decoder) getBits(n uint) (uint32, error) {
	if d.nbits < n {
		d.fill()
		if d.nbits < n {
			return 0, ErrCorrupt
		}
	}
	v := uint32(d.bitbuf) & (1<<n - 1)
	d.bitbuf >>= n
	d.nbits -= n
	return v, nil
}

// decodeSym consumes one Huffman-coded symbol via t.
func (d *Decoder) decodeSym(t *table) (uint32, error) {
	if d.nbits < t.max {
		d.fill()
	}
	e := t.entries[uint32(d.bitbuf)&t.mask]
	n := uint(e & 0xf)
	if n == 0 || n > d.nbits {
		return 0, ErrCorrupt
	}
	d.bitbuf >>= n
	d.nbits -= n
	return uint32(e >> 4), nil
}

// Length and distance code expansion (RFC 1951 §3.2.5).
var (
	lenBase = [29]uint16{3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
		35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258}
	lenExtra = [29]uint8{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
		3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0}
	distBase = [30]uint16{1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
		257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577}
	distExtra = [30]uint8{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
		7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}
	// clenOrder is the transmission order of the code-length code lengths.
	clenOrder = [19]uint8{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}
)

// buildFixed constructs the fixed-Huffman tables (§3.2.6) once per Decoder.
func (d *Decoder) buildFixed() error {
	var lit [288]byte
	for i := range lit {
		switch {
		case i < 144:
			lit[i] = 8
		case i < 256:
			lit[i] = 9
		case i < 280:
			lit[i] = 7
		default:
			lit[i] = 8
		}
	}
	if err := d.fixedLit.build(lit[:]); err != nil {
		return err
	}
	var dst [32]byte
	for i := range dst {
		dst[i] = 5
	}
	if err := d.fixedDst.build(dst[:]); err != nil {
		return err
	}
	d.fixedBuilt = true
	return nil
}

// readDynamicHeader parses a dynamic-Huffman block header (§3.2.7) and
// builds d.litlen and d.dist.
func (d *Decoder) readDynamicHeader() error {
	hlit, err := d.getBits(5)
	if err != nil {
		return err
	}
	hdist, err := d.getBits(5)
	if err != nil {
		return err
	}
	hclen, err := d.getBits(4)
	if err != nil {
		return err
	}
	nlit, ndist, nclen := int(hlit)+257, int(hdist)+1, int(hclen)+4
	if nlit > 286 || ndist > 30 {
		return ErrCorrupt
	}
	var clens [19]byte
	for i := 0; i < nclen; i++ {
		v, err := d.getBits(3)
		if err != nil {
			return err
		}
		clens[clenOrder[i]] = byte(v)
	}
	if err := d.clen.build(clens[:]); err != nil {
		return err
	}
	// Literal/length and distance code lengths share one run-length coded
	// sequence (repeats may cross the boundary).
	total := nlit + ndist
	lens := d.lens[:total]
	for i := 0; i < total; {
		sym, err := d.decodeSym(&d.clen)
		if err != nil {
			return err
		}
		switch {
		case sym < 16:
			lens[i] = byte(sym)
			i++
		case sym == 16:
			if i == 0 {
				return ErrCorrupt
			}
			rep, err := d.getBits(2)
			if err != nil {
				return err
			}
			n := int(rep) + 3
			if i+n > total {
				return ErrCorrupt
			}
			prev := lens[i-1]
			for j := 0; j < n; j++ {
				lens[i] = prev
				i++
			}
		case sym == 17 || sym == 18:
			bitsN, base := uint(3), 3
			if sym == 18 {
				bitsN, base = 7, 11
			}
			rep, err := d.getBits(bitsN)
			if err != nil {
				return err
			}
			n := int(rep) + base
			if i+n > total {
				return ErrCorrupt
			}
			for j := 0; j < n; j++ {
				lens[i] = 0
				i++
			}
		default:
			return ErrCorrupt
		}
	}
	if err := d.litlen.build(lens[:nlit]); err != nil {
		return err
	}
	return d.dist.build(lens[nlit : nlit+ndist])
}

// inflateBlock decodes one Huffman-compressed block body into dst.
func (d *Decoder) inflateBlock(dst []byte, lit, dist *table, origin, limit int) ([]byte, error) {
	for {
		sym, err := d.decodeSym(lit)
		if err != nil {
			return dst, err
		}
		if sym < 256 {
			if len(dst) >= limit {
				return dst, ErrTooLarge
			}
			dst = append(dst, byte(sym))
			continue
		}
		if sym == 256 {
			return dst, nil // end of block
		}
		if sym > 285 {
			return dst, ErrCorrupt
		}
		li := sym - 257
		length := int(lenBase[li])
		if e := uint(lenExtra[li]); e > 0 {
			x, err := d.getBits(e)
			if err != nil {
				return dst, err
			}
			length += int(x)
		}
		dsym, err := d.decodeSym(dist)
		if err != nil {
			return dst, err
		}
		if dsym > 29 {
			return dst, ErrCorrupt
		}
		distance := int(distBase[dsym])
		if e := uint(distExtra[dsym]); e > 0 {
			x, err := d.getBits(e)
			if err != nil {
				return dst, err
			}
			distance += int(x)
		}
		if distance > len(dst)-origin {
			return dst, ErrCorrupt // reference before the stream's start
		}
		if len(dst)+length > limit {
			return dst, ErrTooLarge
		}
		p := len(dst) - distance
		if distance >= length {
			dst = append(dst, dst[p:p+length]...)
		} else {
			for j := 0; j < length; j++ {
				dst = append(dst, dst[p+j])
			}
		}
	}
}

// AppendDecode decompresses the complete DEFLATE stream in src, appending
// the output to dst and returning the extended slice. Decoding fails with
// ErrTooLarge as soon as the output would exceed limit bytes total (len of
// the returned slice, including what dst already held). On error the
// returned slice holds the output produced so far. Bytes in src beyond the
// final block are ignored, matching compress/flate.
func (d *Decoder) AppendDecode(dst, src []byte, limit int) ([]byte, error) {
	d.src = src
	d.pos = 0
	d.bitbuf = 0
	d.nbits = 0
	defer func() { d.src = nil }()
	origin := len(dst)
	for {
		bfinal, err := d.getBits(1)
		if err != nil {
			return dst, err
		}
		btype, err := d.getBits(2)
		if err != nil {
			return dst, err
		}
		switch btype {
		case 0: // stored
			// Discard bits to the byte boundary, then LEN/~LEN.
			skip := d.nbits & 7
			d.bitbuf >>= skip
			d.nbits -= skip
			ln, err := d.getBits(16)
			if err != nil {
				return dst, err
			}
			nln, err := d.getBits(16)
			if err != nil {
				return dst, err
			}
			if uint16(ln) != ^uint16(nln) {
				return dst, ErrCorrupt
			}
			n := int(ln)
			if len(dst)+n > limit {
				return dst, ErrTooLarge
			}
			for n > 0 && d.nbits >= 8 {
				dst = append(dst, byte(d.bitbuf))
				d.bitbuf >>= 8
				d.nbits -= 8
				n--
			}
			if n > 0 {
				if d.pos+n > len(d.src) {
					return dst, ErrCorrupt
				}
				dst = append(dst, d.src[d.pos:d.pos+n]...)
				d.pos += n
			}
		case 1: // fixed Huffman
			if !d.fixedBuilt {
				if err := d.buildFixed(); err != nil {
					return dst, err
				}
			}
			if dst, err = d.inflateBlock(dst, &d.fixedLit, &d.fixedDst, origin, limit); err != nil {
				return dst, err
			}
		case 2: // dynamic Huffman
			if err := d.readDynamicHeader(); err != nil {
				return dst, err
			}
			if dst, err = d.inflateBlock(dst, &d.litlen, &d.dist, origin, limit); err != nil {
				return dst, err
			}
		default:
			return dst, ErrCorrupt
		}
		if bfinal == 1 {
			return dst, nil
		}
	}
}
