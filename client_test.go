package synscan

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesOverload: 429 + Retry-After is retried (honoring the
// hint) until the server admits the request, and the final result decodes.
func TestClientRetriesOverload(t *testing.T) {
	var calls atomic.Int32
	var sawRetryWait atomic.Bool
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && time.Duration(now-prev) >= time.Second {
			sawRetryWait.Store(true)
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server overloaded"}`))
			return
		}
		w.Write([]byte(`{"matched":42,"total_rows":1,"degraded":false,
			"rows":[{"key":[{"field":"tool","num":1,"str":"zmap"}],"aggs":[{"count":42}]}]}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL,
		WithRetries(3),
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithClientSeed(7))
	q, err := NewQuery().Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunRemoteQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 42 {
		t.Fatalf("Matched = %d, want 42", res.Matched)
	}
	// Aggregate rows must decode: the server writes group keys with wire
	// field names ({"field":"tool"}), which Field.UnmarshalJSON resolves.
	if len(res.Rows) != 1 || len(res.Rows[0].Key) != 1 ||
		res.Rows[0].Key[0].Str != "zmap" || res.Rows[0].Aggs[0].Count != 42 {
		t.Fatalf("rows did not decode: %+v", res.Rows)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 rejections + success)", got)
	}
	if !sawRetryWait.Load() {
		t.Fatal("client ignored the 1s Retry-After hint (retries arrived sooner)")
	}
}

// TestClientExhaustsRetries: persistent overload surfaces as an
// HTTPStatusError carrying the final 429 after the retry budget is spent.
func TestClientExhaustsRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"server overloaded"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	q, err := NewQuery().Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunRemoteQuery(context.Background(), q)
	var se *HTTPStatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *HTTPStatusError, got %v", err)
	}
	if se.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("StatusCode = %d, want 429", se.StatusCode)
	}
	if se.Body != "server overloaded" {
		t.Fatalf("Body = %q, want the decoded JSON error text", se.Body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (initial + 2 retries)", got)
	}
}

// TestClientNoRetryOnClientError: 400s are the caller's fault; retrying
// them would hammer the server with the same broken request.
func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad filter"}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(5), WithBackoff(time.Millisecond, 2*time.Millisecond))
	q, err := NewQuery().Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunRemoteQuery(context.Background(), q)
	var se *HTTPStatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 HTTPStatusError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retry on 400)", got)
	}
}

// TestClientContextCancelDuringBackoff: a canceled context aborts the wait
// instead of sleeping out the full backoff.
func TestClientContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(3))
	q, err := NewQuery().Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.RunRemoteQuery(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancel took %v, backoff was not interrupted", el)
	}
}

// TestClientRemoteSelect: a select-mode query decodes the scan list with
// the wire field names.
func TestClientRemoteSelect(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/query" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		// The POSTed body must be the wire form the server's parser accepts.
		var req struct {
			Where json.RawMessage `json:"where"`
			Limit int             `json:"limit"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("request body: %v", err)
		}
		if req.Limit != 5 || req.Where == nil {
			t.Errorf("request not in wire form: %+v", req)
		}
		w.Write([]byte(`{"matched":2,"returned":1,"truncated":true,"degraded":false,
			"scans":[{"src":"10.0.0.1","start_ns":1,"end_ns":2,"packets":100,
			"distinct_dsts":60,"ports":[443],"tool":"zmap","qualified":true,
			"rate_pps":1000,"coverage":0.5}]}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	q, err := NewQuery().Years(2020).Limit(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunRemoteQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 2 || !res.Truncated || len(res.Scans) != 1 {
		t.Fatalf("bad decode: %+v", res)
	}
	sc := res.Scans[0]
	if sc.Src != "10.0.0.1" || sc.Tool != "zmap" || sc.Ports[0] != 443 || !sc.Qualified {
		t.Fatalf("scan fields mismatched: %+v", sc)
	}
}

// TestClientValidatesLocally: a malformed query fails before any request.
func TestClientValidatesLocally(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("server must not be reached for a locally invalid query")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	q := &Query{Limit: -1}
	if _, err := c.RunRemoteQuery(context.Background(), q); err == nil {
		t.Fatal("invalid query must fail locally")
	}
}
