package synscan

// Integration tests across module boundaries: the full
// simulate → pcap → parse → detect path, and property-based invariants on
// campaign detection driven by random probe streams.

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/pcap"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// TestPcapRoundTripPipeline simulates a capture, spools it through the pcap
// format, re-parses every frame, re-runs campaign detection, and requires
// the same campaigns as the direct in-memory path.
func TestPcapRoundTripPipeline(t *testing.T) {
	s, err := workload.NewScenario(workload.Config{
		Year: 2018, Seed: 3, Scale: 0.0003, TelescopeSize: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Path A: direct detection. Path B: through the pcap codec.
	var direct []*core.Scan
	detA := core.NewDetector(s.DetectorConfig, func(sc *core.Scan) { direct = append(direct, sc) })

	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 0, packet.FrameLen)
	var accepted uint64
	s.Run(func(p *packet.Probe) {
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		accepted++
		detA.Ingest(p)
		frame = p.AppendFrame(frame[:0])
		if err := w.WritePacket(p.Time, frame); err != nil {
			t.Fatal(err)
		}
	})
	detA.FlushAll()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var fromFile []*core.Scan
	detB := core.NewDetector(s.DetectorConfig, func(sc *core.Scan) { fromFile = append(fromFile, sc) })
	var parsed uint64
	var p packet.Probe
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Truncated() {
			t.Fatalf("full frames must not be truncated: incl=%d orig=%d", len(rec.Data), rec.OrigLen)
		}
		if err := p.UnmarshalFrame(rec.Data); err != nil {
			t.Fatal(err)
		}
		p.Time = rec.Time
		parsed++
		detB.Ingest(&p)
	}
	detB.FlushAll()

	if parsed != accepted {
		t.Fatalf("parsed %d != accepted %d", parsed, accepted)
	}
	if len(direct) != len(fromFile) {
		t.Fatalf("campaign counts differ: %d direct vs %d from pcap", len(direct), len(fromFile))
	}
	for i := range direct {
		a, b := direct[i], fromFile[i]
		if a.Src != b.Src || a.Packets != b.Packets || a.Tool != b.Tool ||
			a.Qualified != b.Qualified || a.DistinctDsts != b.DistinctDsts {
			t.Fatalf("campaign %d differs:\n direct: %+v\n pcap:   %+v", i, a, b)
		}
	}
}

// TestCampaignInvariantsQuick feeds random probe streams through the
// detector and checks structural invariants on every emitted scan.
func TestCampaignInvariantsQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%2000 + 10
		r := rng.New(seed)
		var scans []*core.Scan
		det := core.NewDetector(core.Config{TelescopeSize: 4096},
			func(sc *core.Scan) { scans = append(scans, sc) })
		probers := make([]tools.Prober, 8)
		for i := range probers {
			probers[i] = tools.NewProber(tools.Tools[i%len(tools.Tools)],
				uint32(i+1), r.DeriveN("p", uint64(i)))
		}
		tm := int64(0)
		for i := 0; i < n; i++ {
			p := probers[r.Intn(len(probers))].Probe(r.Uint32(), uint16(r.Intn(100)))
			tm += int64(r.Intn(1e9))
			if r.Intn(100) == 0 {
				tm += 20 * 3600 * 1e9 // force expiries
			}
			p.Time = tm
			det.Ingest(&p)
		}
		det.FlushAll()

		var total uint64
		for _, sc := range scans {
			total += sc.Packets
			if sc.Packets == 0 || sc.Start > sc.End {
				return false
			}
			if uint64(sc.DistinctDsts) > sc.Packets || sc.DistinctDsts == 0 {
				return false
			}
			if sc.Coverage < 0 || sc.Coverage > 1 || sc.RatePPS < 0 {
				return false
			}
			for j := 1; j < len(sc.Ports); j++ {
				if sc.Ports[j] <= sc.Ports[j-1] {
					return false // must be sorted and distinct
				}
			}
			if len(sc.Ports) == 0 || uint64(len(sc.Ports)) > sc.Packets {
				return false
			}
		}
		return total == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestVantageNoiseDeterminism: the vantage observation noise must be a pure
// function of the telescope seed.
func TestVantageNoiseDeterminism(t *testing.T) {
	run := func(telSeed uint64) uint64 {
		s, err := workload.NewScenario(workload.Config{
			Year: 2020, Seed: 9, Scale: 0.0002, TelescopeSize: 2048,
			TelescopeSeed: telSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var n uint64
		s.Run(func(*packet.Probe) { n++ })
		return n
	}
	a1, a2, b := run(100), run(100), run(200)
	if a1 != a2 {
		t.Fatal("same telescope seed must reproduce the same stream")
	}
	if a1 == b {
		t.Fatal("different telescope seeds should produce different samples")
	}
	// But the expectations match: within a few percent.
	ratio := float64(a1) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("vantage volumes diverge too much: %d vs %d", a1, b)
	}
}
