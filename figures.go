package synscan

import (
	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/collab"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/workload"
)

// Result types of the per-experiment analyses, re-exported.
type (
	// DisclosureResult traces a vulnerability-disclosure surge (Fig. 1).
	DisclosureResult = analysis.Figure1Result
	// VolatilityResult holds the weekly /16 change factors (Fig. 2).
	VolatilityResult = analysis.Figure2Result
	// PortsPerSourceResult is the distinct-ports-per-source CDF (Fig. 3).
	PortsPerSourceResult = analysis.Figure3Result
	// PortToolMix is one port's traffic with tool shares (Fig. 4).
	PortToolMix = analysis.Figure4Port
	// PortTypeMix is one port's scans by scanner type (Fig. 5).
	PortTypeMix = analysis.Figure5Port
	// RecurrenceResult holds per-type recurrence and downtime (Fig. 6).
	RecurrenceResult = analysis.Figure6Result
	// SpeedCoverageRow summarizes one scanner type (Fig. 7).
	SpeedCoverageRow = analysis.Figure7Row
	// OrgCoverageRow is one institutional scanner's port coverage (Fig. 8).
	OrgCoverageRow = analysis.Figure8Row
	// OrgCoverageDelta compares 2023 vs 2024 coverage (Figs. 9/10).
	OrgCoverageDelta = analysis.Figure910Row
	// PortCoverageResult carries the §5.1 scalars.
	PortCoverageResult = analysis.Sec51Result
	// VerticalScanResult carries the §5.2 scalars.
	VerticalScanResult = analysis.Sec52Result
	// ToolSpeedResult carries the §6.3 per-tool speed summaries.
	ToolSpeedResult = analysis.Sec63Result
	// CoverageModesResult carries the §6.4 coverage-mode detection.
	CoverageModesResult = analysis.Sec64Result
	// OriginResult carries the §5.4 origin-country structure.
	OriginResult = analysis.Sec54Result
	// BiasResult quantifies the benign-scanner measurement bias (§7).
	BiasResult = analysis.BiasResult
	// BlockableResult is the fingerprint-blockable traffic share (§7).
	BlockableResult = analysis.BlockableResult
	// VantageResult compares two telescope vantage points (§7).
	VantageResult = analysis.VantageResult
	// BlocklistResult measures weekly blocklist staleness (§4.4/§6.6).
	BlocklistResult = analysis.BlocklistResult
	// CollabGroup is one reconstructed logical (possibly sharded) scan.
	CollabGroup = collab.Group
	// CollabStats summarizes a collaboration-detection pass.
	CollabStats = collab.Stats
	// CollabConfig tunes the grouping heuristics.
	CollabConfig = collab.Config
	// Evaluation is the complete machine-readable result set (every table,
	// figure and section scalar), with JSON and CSV export methods.
	Evaluation = analysis.Evaluation
)

// Evaluate simulates the decade and computes every experiment of the
// paper's evaluation in one call — the programmatic form of
// `syneval -json`.
func Evaluate(seed uint64, scale float64, telescopeSize int) (*Evaluation, error) {
	return analysis.FullEvaluation(seed, scale, telescopeSize)
}

// DisclosureResponse reproduces Figure 1: inject a disclosure event into the
// given year and trace the surge and its decay (KS-verified).
func DisclosureResponse(cfg Config, ev Disclosure) (*DisclosureResult, error) {
	return analysis.Figure1(cfg.Seed, cfg.Scale, cfg.TelescopeSize, cfg.Year, ev)
}

// Volatility reproduces Figure 2 from a collected year.
func Volatility(yd *YearData) *VolatilityResult { return analysis.Figure2(yd) }

// PortsPerSource reproduces Figure 3 from a collected year.
func PortsPerSource(yd *YearData) *PortsPerSourceResult { return analysis.Figure3(yd) }

// ToolMixByPort reproduces Figure 4: top-N ports by traffic with tool
// shares.
func ToolMixByPort(yd *YearData, topN int) []PortToolMix { return analysis.Figure4(yd, topN) }

// TypeMixByPort reproduces Figure 5: top-N ports by scans with scanner-type
// shares.
func TypeMixByPort(yd *YearData, topN int) []PortTypeMix { return analysis.Figure5(yd, topN) }

// Recurrence reproduces Figure 6 over one or more collected years.
func Recurrence(years []*YearData) *RecurrenceResult { return analysis.Figure6(years) }

// SpeedAndCoverage reproduces Figure 7 from a collected year.
func SpeedAndCoverage(yd *YearData) []SpeedCoverageRow { return analysis.Figure7(yd) }

// InstitutionalCoverage reproduces Figure 8 for the given year: the port
// coverage of every known scanning organization.
func InstitutionalCoverage(cfg Config) ([]OrgCoverageRow, error) {
	s, err := workload.NewScenario(workload.Config{
		Year: cfg.Year, Seed: cfg.Seed, Scale: cfg.Scale,
		TelescopeSize: cfg.TelescopeSize, Disclosures: cfg.Disclosures,
	})
	if err != nil {
		return nil, err
	}
	return analysis.Figure8(s), nil
}

// InstitutionalCoverageDelta reproduces Figures 9/10: 2023 vs 2024 coverage
// per organization.
func InstitutionalCoverageDelta(seed uint64, scale float64, telescopeSize int) ([]OrgCoverageDelta, error) {
	reg := inetmodel.BuildRegistry(seed)
	return analysis.Figure910(seed, scale, telescopeSize, reg)
}

// PortCoverage computes the §5.1 scalars for a collected year.
func PortCoverage(yd *YearData, seed uint64) *PortCoverageResult {
	return analysis.Sec51(yd, inetmodel.NewServiceModel(seed), seed)
}

// VerticalScans computes the §5.2 scalars for a collected year.
func VerticalScans(yd *YearData) *VerticalScanResult { return analysis.Sec52(yd) }

// ToolSpeeds computes the §6.3 per-tool speed summaries.
func ToolSpeeds(yd *YearData) *ToolSpeedResult { return analysis.Sec63(yd) }

// CoverageModes computes the §6.4 coverage distribution of one tool.
func CoverageModes(yd *YearData, tool Tool) *CoverageModesResult {
	return analysis.Sec64(yd, tool)
}

// SpeedPortsCorrelation computes the §5.3 speed-vs-ports correlation.
func SpeedPortsCorrelation(yd *YearData) (PearsonResult, error) {
	return analysis.SpeedPortsCorrelation(yd)
}

// OriginStructure computes the §5.4 origin-country analysis: top origin
// countries, single-country-dominated ports, and the per-port origin splits
// for the headline biased services.
func OriginStructure(yd *YearData) *OriginResult { return analysis.Sec54(yd) }

// InstitutionalBias quantifies how much the known "benign" scanners distort
// a naive view of the threat landscape (§7 future work).
func InstitutionalBias(yd *YearData, topN int) *BiasResult {
	return analysis.InstitutionalBias(yd, topN)
}

// BlockableShare computes the share of traffic identifiable (and hence
// blockable) by the §3.3 tool fingerprints — the alert-fatigue finding of
// §7: 92.1% in 2020, under 40% by 2024.
func BlockableShare(yd *YearData) *BlockableResult { return analysis.Blockable(yd) }

// CompareVantagePoints runs one measurement year against two different
// telescope address sets and compares what they see (§7 future work).
func CompareVantagePoints(year int, seed uint64, scale float64, telescopeSize int, telSeedA, telSeedB uint64) (*VantageResult, error) {
	return analysis.CompareVantage(year, seed, scale, telescopeSize, telSeedA, telSeedB)
}

// DisclosureResponseMulti overlays several disclosure events in one
// simulated year, like the paper's ten-event Figure 1.
func DisclosureResponseMulti(cfg Config, events []Disclosure) (*analysis.Figure1MultiResult, error) {
	return analysis.Figure1Multi(cfg.Seed, cfg.Scale, cfg.TelescopeSize, cfg.Year, events)
}

// ZMapDailyCounts reproduces the §4.1 per-day ZMap campaign counts used to
// establish that the 2024 surge is a landscape shift, not one campaign.
func ZMapDailyCounts(yd *YearData) *analysis.ZMapDailyResult {
	return analysis.ZMapDaily(yd)
}

// BlocklistDecay measures how quickly a weekly source blocklist loses
// coverage of the following weeks' traffic (§4.4/§6.6).
func BlocklistDecay(cfg Config) (*BlocklistResult, error) {
	s, err := workload.NewScenario(workload.Config{
		Year: cfg.Year, Seed: cfg.Seed, Scale: cfg.Scale,
		TelescopeSize: cfg.TelescopeSize, Disclosures: cfg.Disclosures,
	})
	if err != nil {
		return nil, err
	}
	return analysis.BlocklistDecay(s), nil
}

// DetectCollaboration groups detected campaigns into logical scans,
// merging shards of distributed scans (§4.1/§6.4: counting scans as
// single-source overstates actor activity).
func DetectCollaboration(scans []*Scan, cfg CollabConfig) []CollabGroup {
	return collab.Detect(scans, cfg)
}

// SummarizeCollaboration aggregates a DetectCollaboration result.
func SummarizeCollaboration(groups []CollabGroup) CollabStats {
	return collab.Summarize(groups)
}
