module github.com/synscan/synscan

go 1.22
