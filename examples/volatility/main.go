// Volatility reproduces the Figure-2 analysis of §4.4: week-over-week, the
// scanning activity of most /16 source netblocks changes by a factor of two
// or more — only a stable core (largely institutional space) keeps doing
// the same thing. The paper's conclusion: blocklists go stale in days, and
// one-shot measurements mischaracterize the ecosystem.
package main

import (
	"fmt"
	"log"

	synscan "github.com/synscan/synscan"
)

func main() {
	yd, err := synscan.Simulate(synscan.Config{
		Year: 2020, Seed: 11, Scale: 0.001, TelescopeSize: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	res := synscan.Volatility(yd)

	fmt.Printf("weekly change factors across source /16 netblocks, %d\n\n", yd.Year)
	fmt.Printf("%-28s %10s %10s %10s\n", "", "sources", "scans", "packets")
	fmt.Printf("%-28s %9.1f%% %9.1f%% %9.1f%%\n", "changed >= 2x week-over-week",
		res.SourcesTwofold*100, res.ScansTwofold*100, res.PacketsTwofold*100)
	fmt.Printf("%-28s %9.1f%%\n\n", "stable blocks (< 1.25x)", res.Stable*100)

	fmt.Println("packet change-factor distribution (CDF):")
	ratios := res.PacketRatios
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		idx := int(q * float64(len(ratios)-1))
		fmt.Printf("  p%-3.0f  %6.1fx\n", q*100, ratios[idx])
	}

	fmt.Println("\nimplication: an IP blocklist distributed weekly describes a")
	fmt.Println("network landscape that no longer exists (§4.4).")
}
