// Fingerprints is a tour of the §3.3 tool-identification equations: it
// generates live probes with each scanner implementation and shows which
// relations hold on the wire — the exact signals the campaign classifier
// votes over.
package main

import (
	"fmt"

	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

func main() {
	r := rng.New(2024)
	src := uint32(0x0A141E28)

	probers := []tools.Prober{
		tools.NewZMap(src, r.Derive("zmap")),
		tools.NewMasscan(src, r.Derive("masscan")),
		tools.NewNMap(src, r.Derive("nmap")),
		tools.NewMirai(src, r.Derive("mirai")),
		tools.NewUnicorn(src, r.Derive("unicorn")),
		tools.NewCustom(src, r.Derive("custom")),
	}

	fmt.Println("per-packet and pairwise fingerprint relations (§3.3), 64 probes each:")
	fmt.Printf("%-12s %8s %8s %8s %8s %8s  %s\n",
		"generator", "zmap", "masscan", "mirai", "nmap", "unicorn", "classified as")

	tr := r.Derive("targets")
	for _, pr := range probers {
		var votes fingerprint.Votes
		var sampleSeq, sampleIPID string
		for i := 0; i < 64; i++ {
			p := pr.Probe(tr.Uint32(), uint16(20+tr.Intn(8000)))
			if i == 0 {
				sampleSeq = fmt.Sprintf("seq=%08x", p.Seq)
				sampleIPID = fmt.Sprintf("ipid=%05d", p.IPID)
			}
			votes.Add(&p)
		}
		pct := func(n uint32, of uint32) string {
			if of == 0 {
				return "-"
			}
			return fmt.Sprintf("%d/%d", n, of)
		}
		fmt.Printf("%-12s %8s %8s %8s %8s %8s  %-10v (%s %s)\n",
			pr.Tool(),
			pct(votes.ZMap, votes.Packets),
			pct(votes.Masscan, votes.Packets),
			pct(votes.Mirai, votes.Packets),
			pct(votes.NMap, votes.Pairs),
			pct(votes.Unicorn, votes.Pairs),
			votes.Classify(), sampleSeq, sampleIPID)
	}

	fmt.Println("\nthe relations, spelled out on one probe pair:")
	n := tools.NewNMap(src, r.Derive("n2"))
	a := n.Probe(0xC0A80001, 443)
	b := n.Probe(0x08080808, 22)
	x := a.Seq ^ b.Seq
	fmt.Printf("  NMap:    seq1^seq2 = %08x — low half %04x == high half %04x: %v\n",
		x, x&0xffff, x>>16, fingerprint.PairNMap(&a, &b))

	m := tools.NewMasscan(src, r.Derive("m2"))
	p := m.Probe(0xC0A80001, 443)
	fmt.Printf("  Masscan: ipid %04x == (dst^dport^seq)&0xffff %04x: %v\n",
		p.IPID, uint16(p.Dst^uint32(p.DstPort)^p.Seq), fingerprint.IsMasscan(&p))

	mi := tools.NewMirai(src, r.Derive("mi2"))
	q := mi.Probe(0xC0A80001, 23)
	fmt.Printf("  Mirai:   seq %08x == dst %08x: %v\n", q.Seq, q.Dst, fingerprint.IsMirai(&q))

	z := tools.NewZMap(src, r.Derive("z2"))
	w := z.Probe(0xC0A80001, 443)
	fmt.Printf("  ZMap:    ipid == 54321: %v\n", fingerprint.IsZMap(&w))

	_ = packet.FlagSYN // (all generated probes are pure SYNs)
}
