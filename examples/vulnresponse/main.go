// Vulnresponse reproduces the Figure-1 experiment of §4.3: after a
// vulnerability disclosure, scanning for the affected port surges within
// days — and, unlike in the 2014-era measurements, dies back down within
// weeks. A two-sample Kolmogorov–Smirnov test confirms the return to the
// pre-disclosure activity distribution.
package main

import (
	"fmt"
	"log"
	"strings"

	synscan "github.com/synscan/synscan"
)

func main() {
	// A synthetic disclosure on day 12 of the 2019 window: an exploitable
	// service on port 9898, with adversaries ramping up immediately and
	// interest decaying with a 4-day half-life-ish e-folding time.
	event := synscan.Disclosure{
		Day:        12,
		Port:       9898,
		PeakPerDay: 60000, // paper-scale extra campaigns/day at the peak
		DecayDays:  4,
	}

	res, err := synscan.DisclosureResponse(synscan.Config{
		Year: 2019, Seed: 7, Scale: 0.001, TelescopeSize: 4096,
	}, event)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("disclosure on day %d, port %d\n\n", event.Day, event.Port)
	fmt.Println("daily activity relative to the pre-disclosure baseline:")
	for day, rel := range res.RelativeActivity {
		bar := strings.Repeat("#", int(rel))
		if len(bar) > 60 {
			bar = bar[:60] + "+"
		}
		fmt.Printf("  day %2d %7.2fx %s\n", day, rel, bar)
	}

	fmt.Printf("\npeak: %.1fx baseline on day %d (%d days after disclosure)\n",
		res.PeakFactor, res.PeakDay, res.PeakDay-event.Day)
	fmt.Printf("KS test, pre-disclosure vs final two weeks: D=%.3f p=%.3f\n",
		res.KS.D, res.KS.P)
	if res.KS.SameDistribution(0.05) {
		fmt.Println("=> activity has returned to the baseline distribution:")
		fmt.Println("   the Internet forgets fast (§4.3).")
	} else {
		fmt.Println("=> activity still elevated at the end of the window.")
	}
}
