// Quickstart: simulate one telescope measurement year, detect scan
// campaigns, fingerprint the tools behind them, and print a summary —
// the whole pipeline in ~50 lines of public API.
package main

import (
	"fmt"
	"log"
	"sort"

	synscan "github.com/synscan/synscan"
)

func main() {
	// 2020: the year Masscan carried 81% of scanning traffic and Mirai
	// still drove a quarter of all scans.
	yd, err := synscan.Simulate(synscan.Config{
		Year:          2020,
		Seed:          42,
		Scale:         0.001, // ~1/1000 of the paper's traffic volume
		TelescopeSize: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	scans := yd.QualifiedScans()
	fmt.Printf("telescope accepted %d SYN probes from %d sources over %d days\n",
		yd.AcceptedPackets, yd.DistinctSources, yd.Days)
	fmt.Printf("detected %d scan campaigns\n\n", len(scans))

	// Which tools ran them? (§3.3 fingerprints, campaign-level majority.)
	byTool := map[synscan.Tool]int{}
	for _, s := range scans {
		byTool[s.Tool]++
	}
	tools := make([]synscan.Tool, 0, len(byTool))
	for tl := range byTool {
		tools = append(tools, tl)
	}
	sort.Slice(tools, func(i, j int) bool { return byTool[tools[i]] > byTool[tools[j]] })
	fmt.Println("campaigns by tool:")
	for _, tl := range tools {
		fmt.Printf("  %-12s %5d (%.1f%%)\n", tl, byTool[tl],
			100*float64(byTool[tl])/float64(len(scans)))
	}

	// The five most-probed ports.
	fmt.Println("\ntop ports by packets:")
	for _, kv := range yd.PacketsPerPort.TopK(5) {
		fmt.Printf("  %-6d %8d probes\n", kv.Key, kv.Count)
	}

	// And the headline finding: a handful of institutional scanners send
	// an outsized share of all probes (Table 2).
	for _, row := range synscan.Table2([]*synscan.YearData{yd}) {
		if row.Type == synscan.TypeInstitutional {
			fmt.Printf("\ninstitutional scanners: %.2f%% of sources, %.1f%% of packets\n",
				row.Sources*100, row.Packets*100)
		}
	}
}
