// Blocklist demonstrates the paper's operational takeaway (§4.4, §6.6):
// a blocklist of observed scanner addresses is nearly worthless a week
// later — non-institutional scanners are burned after one campaign, so
// "collecting and sharing lists of IP addresses observed to have
// participated in scanning ... would in practice be relatively
// ineffective". The exception: institutional scanners, which re-scan daily
// from stable addresses.
package main

import (
	"fmt"
	"log"
	"strings"

	synscan "github.com/synscan/synscan"
)

func main() {
	res, err := synscan.BlocklistDecay(synscan.Config{
		Year: 2022, Seed: 5, Scale: 0.001, TelescopeSize: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blocklist coverage of later traffic, %d (%d capture weeks)\n\n", res.Year, res.Weeks)
	fmt.Printf("%-18s %-12s %-12s\n", "list age", "all traffic", "institutional")
	for k := 0; k < res.Weeks; k++ {
		label := "live feed"
		if k > 0 {
			label = fmt.Sprintf("%d week(s) old", k)
		}
		bar := strings.Repeat("#", int(res.HitRate[k]*30))
		fmt.Printf("%-18s %6.1f%%      %6.1f%%      %s\n",
			label, res.HitRate[k]*100, res.InstHitRate[k]*100, bar)
	}

	fmt.Println("\na one-week-old list covers only a fraction of ongoing scanning —")
	fmt.Println("while the institutional scanners it lists will still be there —")
	fmt.Println("so scanner lists are only useful as a real-time feed (§4.4).")
}
