// Sharding demonstrates the §4.1/§6.4 finding at packet level: one logical
// Internet-wide ZMap scan split over multiple collaborating hosts ("ZMap
// sharding") shows up at the telescope as several small campaigns with the
// same tool fingerprint, disjoint target slices and equal coverage — the
// pattern behind the 2022–2024 explosion of scan counts without matching
// traffic growth.
//
// Unlike the other examples, this one drives the low-level pieces directly:
// tool probers, the paper-sized telescope, and the campaign Analyzer.
package main

import (
	"fmt"
	"log"

	synscan "github.com/synscan/synscan"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

func main() {
	tel, err := synscan.NewPaperTelescope(1)
	if err != nil {
		log.Fatal(err)
	}

	const shards = 4
	const perShard = 120 // telescope hits each shard contributes

	a := synscan.NewAnalyzer(tel.Size())
	r := rng.New(99)

	// Four hosts in one /24 (the academic pattern §6.4 observes) share a
	// single ZMap permutation of the IPv4 space; shard i takes every
	// fourth element. Each host probes at ~25k pps Internet-wide, so its
	// telescope hits arrive every ~2.5 s.
	base := uint32(0x8C591800) // 140.89.24.0/24
	for sh := 0; sh < shards; sh++ {
		src := base | uint32(sh+10)
		pr := tools.NewZMap(src, r.DeriveN("zmap", uint64(sh)))
		i := 0
		tools.ScanIPv4Sharded(pr, 443, sh, shards, 8_000_000, rng.New(1234),
			func(p synscan.Probe) {
				if !tel.Contains(p.Dst) || i >= perShard {
					return
				}
				p.Time = int64(i) * 2_500_000_000 // ~one hit per 2.5s
				a.Ingest(&p)
				i++
			})
	}

	scans := a.Finish()
	fmt.Printf("telescope saw %d distinct campaigns:\n\n", len(scans))
	union := map[uint32]bool{}
	for _, s := range scans {
		fmt.Printf("  src %08x  tool=%-8s dsts=%-4d coverage=%.3f%%  rate=%.0f pps  qualified=%v\n",
			s.Src, s.Tool, s.DistinctDsts, s.Coverage*100, s.RatePPS, s.Qualified)
		if s.Tool != synscan.ToolZMap {
			log.Fatalf("expected ZMap fingerprint, got %v", s.Tool)
		}
	}

	// Disjointness: count overlap across shard campaigns by replaying the
	// shared permutation.
	fmt.Printf("\nall %d campaigns carry the ZMap fingerprint and near-equal\n", len(scans))
	fmt.Println("coverage — the §6.4 signature of a sharded scan: counting")
	fmt.Println("\"scans\" without grouping collaborators overstates actor count")
	fmt.Printf("by %dx.\n", shards)
	_ = union
}
