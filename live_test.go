package synscan

// live_test drives the live ingest path end to end: syningest appends sealed
// segments to a store directory while a running synserve discovers them
// through manifest rescans — no restart — and a one-shot compaction merges
// them without changing a byte of any query result. The reference for
// correctness is the batch path: synalyze over the same spool into one
// sealed archive must yield a byte-identical /v1/scans body.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// startServe launches a synserve binary on an ephemeral port and returns its
// base URL once the listener is up. The server is interrupted (graceful
// drain) at test cleanup.
func startServe(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting synserve: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	})

	// synserve logs "serving on http://<addr>" after binding; everything
	// after that line is drained in the background so the process never
	// blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	var url string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on "); i >= 0 {
			url = strings.TrimSpace(line[i+len("serving on "):])
			break
		}
	}
	if url == "" {
		out, _ := io.ReadAll(stderr)
		t.Fatalf("synserve never reported its address:\n%s", out)
	}
	go io.Copy(io.Discard, stderr)
	return url
}

// getBody GETs url and returns the raw response body, failing on transport
// errors or non-200 statuses.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

// storeStats polls /v1/stats and returns the first store's segment and scan
// counts.
func storeStats(t *testing.T, base string) (segments int, scans uint64) {
	t.Helper()
	var stats struct {
		Stores []struct {
			Segments int    `json:"segments"`
			Scans    uint64 `json:"scans"`
		} `json:"stores"`
	}
	if err := json.Unmarshal(getBody(t, base+"/v1/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Stores) != 1 {
		t.Fatalf("want 1 store in stats, got %d", len(stats.Stores))
	}
	return stats.Stores[0].Segments, stats.Stores[0].Scans
}

// TestLiveIngestServe: the ISSUE-6 acceptance path. syningest seals >= 3
// segments into a store while synserve is already running over it; the
// server's rescan loop discovers them without restart; a one-shot compaction
// merges them; and at every step the /v1/scans body is byte-identical to the
// one served from a single sealed archive produced by the batch path over
// the same capture.
func TestLiveIngestServe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	syntelescope := buildTool(t, dir, "syntelescope")
	synalyze := buildTool(t, dir, "synalyze")
	syningest := buildTool(t, dir, "syningest")
	synserve := buildTool(t, dir, "synserve")

	spool := filepath.Join(dir, "capture.spool")
	out, err := exec.Command(syntelescope,
		"-year", "2019", "-seed", "4", "-scale", "0.0003",
		"-telescope", "2048", "-format", "spool", "-out", spool).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope: %v\n%s", err, out)
	}

	// Batch reference: one sealed archive from the same spool. The "flows
	// closed N" line tells us how many scans to expect everywhere else.
	ref := filepath.Join(dir, "reference.syna")
	out, err = exec.Command(synalyze, "-archive", ref, spool).CombinedOutput()
	if err != nil {
		t.Fatalf("synalyze: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`flows closed (\d+)`).FindSubmatch(out)
	if m == nil {
		t.Fatalf("synalyze output missing flow count:\n%s", out)
	}
	nScans, _ := strconv.Atoi(string(m[1]))
	if nScans < 8 {
		t.Fatalf("capture too small to exercise rotation: %d flows", nScans)
	}

	store := filepath.Join(dir, "store")
	if err := os.MkdirAll(store, 0o755); err != nil {
		t.Fatal(err)
	}

	// The server starts over the still-empty store and stays up for the
	// whole test: every later observation is a live discovery, not a reload.
	base := startServe(t, synserve, "-rescan", "50ms", store)
	query := base + "/v1/scans?limit=100000"

	var res struct {
		Matched  uint64 `json:"matched"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(getBody(t, query), &res); err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 || res.Degraded {
		t.Fatalf("empty store: matched=%d degraded=%v", res.Matched, res.Degraded)
	}

	// Ingest the spool with a rotation bound small enough to seal at least
	// four segments while the server is running.
	segScans := (nScans + 3) / 4
	out, err = exec.Command(syningest,
		"-dir", store, "-segment-scans", fmt.Sprint(segScans),
		"-seal-every", "0", spool).CombinedOutput()
	if err != nil {
		t.Fatalf("syningest: %v\n%s", err, out)
	}

	// The running server must observe every sealed segment within its
	// rescan interval — no restart.
	deadline := time.Now().Add(10 * time.Second)
	var segs int
	var scans uint64
	for {
		segs, scans = storeStats(t, base)
		if scans == uint64(nScans) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never discovered the full store: %d segments, %d/%d scans",
				segs, scans, nScans)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if segs < 3 {
		t.Fatalf("ingest sealed only %d segments, want >= 3", segs)
	}

	liveBody := getBody(t, query)

	// Byte-level equivalence: a second synserve over the batch archive must
	// produce the identical /v1/scans body — same scans, same emit order,
	// same encoding.
	refBase := startServe(t, synserve, ref)
	refBody := getBody(t, refBase+"/v1/scans?limit=100000")
	if !bytes.Equal(liveBody, refBody) {
		t.Fatalf("live store and sealed archive disagree:\n live: %.300s\n ref:  %.300s",
			liveBody, refBody)
	}

	// One-shot compaction merges the small segments; the running server
	// picks up the new (smaller) segment set and the body still matches
	// byte for byte.
	out, err = exec.Command(syningest, "-dir", store, "-compact-now",
		"-compact-min", "2", "-compact-max-bytes", fmt.Sprint(1<<30)).CombinedOutput()
	if err != nil {
		t.Fatalf("syningest -compact-now: %v\n%s", err, out)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		now, scansNow := storeStats(t, base)
		if now < segs && scansNow == uint64(nScans) {
			segs = now
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never observed compaction: still %d segments", now)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if body := getBody(t, query); !bytes.Equal(body, refBody) {
		t.Fatalf("post-compaction body diverged:\n got: %.300s\n ref: %.300s", body, refBody)
	}
}
