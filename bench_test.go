package synscan

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). The per-experiment
// benchmarks operate on a decade collected once per process (so they
// measure the analysis itself); BenchmarkPipeline* measure the full
// generation+capture+detection pipeline, and BenchmarkAblation* quantify
// the design choices called out in DESIGN.md.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

const (
	benchSeed  = 1
	benchScale = 0.0004
	benchTel   = 2048
)

var (
	benchOnce   sync.Once
	benchDecade []*YearData
	benchByYear map[int]*YearData
)

func benchData(b *testing.B) []*YearData {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchDecade, err = SimulateDecade(benchSeed, benchScale, benchTel)
		if err != nil {
			panic(err)
		}
		benchByYear = map[int]*YearData{}
		for _, yd := range benchDecade {
			benchByYear[yd.Year] = yd
		}
	})
	return benchDecade
}

// ---------------------------------------------------------------------------
// Full pipeline

func BenchmarkPipelineYear2020(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		yd, err := Simulate(Config{Year: 2020, Seed: benchSeed, Scale: benchScale, TelescopeSize: benchTel})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(yd.AcceptedPackets), "packets/op")
	}
}

func BenchmarkPipelineDecade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SimulateDecade(benchSeed, benchScale, benchTel); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Tables

func BenchmarkTable1(b *testing.B) {
	years := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := Table1(years, 5)
		if len(rows) != 10 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	years := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := Table2(years)
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// ---------------------------------------------------------------------------
// Figures

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := DisclosureResponse(
			Config{Year: 2019, Seed: benchSeed, Scale: benchScale, TelescopeSize: benchTel},
			Disclosure{Day: 12, Port: 9898, PeakPerDay: 60000, DecayDays: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.PeakFactor <= 1 {
			b.Fatal("no surge")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	benchData(b)
	yd := benchByYear[2020]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Volatility(yd); len(res.PacketRatios) == 0 {
			b.Fatal("no ratios")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, yd := range benchDecade {
			if f := PortsPerSource(yd); f.ECDF.Len() == 0 {
				b.Fatal("empty CDF")
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ToolMixByPort(benchByYear[2020], 10); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := TypeMixByPort(benchByYear[2022], 15); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Recurrence([]*YearData{benchByYear[2022]})
		if len(res.ScansPerSource) == 0 {
			b.Fatal("no recurrence data")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := SpeedAndCoverage(benchByYear[2022]); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := InstitutionalCoverage(Config{
			Year: 2024, Seed: benchSeed, Scale: benchScale, TelescopeSize: benchTel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no orgs")
		}
	}
}

func BenchmarkFigure9_10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := InstitutionalCoverageDelta(benchSeed, benchScale, benchTel)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no orgs")
		}
	}
}

// ---------------------------------------------------------------------------
// Section scalars

func BenchmarkSec51(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := PortCoverage(benchByYear[2022], benchSeed); r.PrivilegedCoverage <= 0 {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkSec52(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := VerticalScans(benchByYear[2020]); r.LargestPortCount == 0 {
			b.Fatal("no verticals")
		}
	}
}

func BenchmarkSec63(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := ToolSpeeds(benchByYear[2020]); len(r.MedianPPS) == 0 {
			b.Fatal("no speeds")
		}
	}
}

func BenchmarkSec64(b *testing.B) {
	benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := CoverageModes(benchByYear[2024], ToolZMap); len(r.Coverages) == 0 {
			b.Fatal("no coverages")
		}
	}
}

func BenchmarkBlocklistDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := BlocklistDecay(Config{
			Year: 2022, Seed: benchSeed, Scale: benchScale, TelescopeSize: benchTel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.HitRate[0] != 1 {
			b.Fatal("bad hit rate")
		}
	}
}

func BenchmarkCollabDetect(b *testing.B) {
	benchData(b)
	scans := benchByYear[2022].QualifiedScans()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := DetectCollaboration(scans, CollabConfig{})
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md design choices)

// makeAblationStream builds a deterministic multi-source stream with
// expiry-inducing gaps for the detector ablation.
func makeAblationStream(n, sources int) []packet.Probe {
	r := rng.New(3)
	probers := make([]tools.Prober, sources)
	for i := range probers {
		probers[i] = tools.NewMasscan(uint32(i+1), r.DeriveN("s", uint64(i)))
	}
	stream := make([]packet.Probe, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := probers[i%sources].Probe(uint32(i), 443)
		tm += int64(r.Intn(10)) * int64(time.Millisecond)
		if i%50000 == 0 && i > 0 {
			tm += 2 * int64(time.Hour)
		}
		p.Time = tm
		stream[i] = p
	}
	return stream
}

func BenchmarkAblationExpiryLRU(b *testing.B) {
	stream := makeAblationStream(100000, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.NewDetector(core.Config{TelescopeSize: 65536}, func(*Scan) {})
		for j := range stream {
			d.Ingest(&stream[j])
		}
		d.FlushAll()
	}
}

func BenchmarkAblationExpirySweep(b *testing.B) {
	stream := makeAblationStream(100000, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.NewNaiveDetector(core.Config{TelescopeSize: 65536}, func(*Scan) {})
		for j := range stream {
			d.Ingest(&stream[j])
		}
		d.FlushAll()
	}
}

func BenchmarkAblationPairCache(b *testing.B) {
	r := rng.New(4)
	pr := tools.NewNMap(1, r)
	probes := make([]packet.Probe, 512)
	for i := range probes {
		probes[i] = pr.Probe(uint32(i), 80)
	}
	b.Run("paircache", func(b *testing.B) {
		var v fingerprint.Votes
		for i := 0; i < b.N; i++ {
			v.Add(&probes[i&511])
		}
	})
	b.Run("fullhistory", func(b *testing.B) {
		h := fingerprint.HistoryVotes{MaxHistory: 512}
		for i := 0; i < b.N; i++ {
			h.Add(&probes[i&511])
		}
	})
}

func BenchmarkAblationPermutation(b *testing.B) {
	b.Run("cyclic-group", func(b *testing.B) {
		p := rng.NewCyclicPerm(rng.New(1))
		for i := 0; i < b.N; i++ {
			_, _ = p.Next()
		}
	})
	b.Run("feistel", func(b *testing.B) {
		p := rng.NewFeistelPerm(1<<32, rng.New(1))
		for i := 0; i < b.N; i++ {
			_ = p.Apply(uint64(i) & 0xffffffff)
		}
	})
}

// ---------------------------------------------------------------------------
// Hot paths at the facade level

func BenchmarkAnalyzerIngest(b *testing.B) {
	stream := makeAblationStream(65536, 1024)
	a := NewAnalyzer(inetmodel.IPv4SpaceSize / 65536)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Ingest(&stream[i%len(stream)])
	}
}

// BenchmarkShardedIngest measures end-to-end detection throughput of the
// sharded detector against the sequential baseline on one large pre-built
// stream. The producer (routing/batching) runs on the bench goroutine; with
// W workers on a multi-core machine the detection work itself parallelizes,
// so workers=4 should ingest the same stream at a multiple of the
// workers=1 rate (bounded by core count — on a single-core runner the
// variants tie, modulo channel overhead).
func BenchmarkShardedIngest(b *testing.B) {
	stream := makeAblationStream(200000, 16384)
	cfg := core.Config{TelescopeSize: 65536}
	run := func(b *testing.B, mk func() core.Ingester) {
		b.ReportAllocs()
		b.SetBytes(int64(len(stream)))
		for i := 0; i < b.N; i++ {
			d := mk()
			for j := range stream {
				d.Ingest(&stream[j])
			}
			d.FlushAll()
		}
	}
	b.Run("sequential", func(b *testing.B) {
		run(b, func() core.Ingester { return core.NewDetector(cfg, func(*Scan) {}) })
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			run(b, func() core.Ingester {
				return core.NewShardedDetector(core.ShardedConfig{Config: cfg, Workers: w}, func(*Scan) {})
			})
		})
	}
	// Metrics variants bound the instrumentation cost: the nil-registry path
	// (the default everywhere) must stay within noise of the uninstrumented
	// sequential/workers numbers above, and the enabled path shows what a
	// live -metrics run pays.
	b.Run("workers=4/metrics", func(b *testing.B) {
		run(b, func() core.Ingester {
			return core.NewDetector(cfg, func(*Scan) {},
				core.WithWorkers(4), core.WithMetrics(obs.NewRegistry()))
		})
	})
	b.Run("sequential/metrics", func(b *testing.B) {
		run(b, func() core.Ingester {
			return core.NewDetector(cfg, func(*Scan) {}, core.WithMetrics(obs.NewRegistry()))
		})
	})
}

// ---------------------------------------------------------------------------
// Zero-alloc hot paths
//
// These benchmarks cover the allocation-gated paths (see alloc_gate_test.go
// and the per-package internal/alloctest budgets): steady-state frame decode,
// detector batch absorb and pooled archive block reads must not allocate;
// run with -benchmem to see the per-op numbers.

// BenchmarkDecodeFrame: one reusable packet.Decoder over a wire-format
// corpus, the synalyze/syningest replay hot path.
func BenchmarkDecodeFrame(b *testing.B) {
	stream := makeAblationStream(4096, 512)
	frames := make([][]byte, len(stream))
	var bytes int64
	for i := range stream {
		if i%7 == 0 {
			stream[i].Flags = packet.FlagPSH | packet.FlagACK
			stream[i].Payload = []byte("GET / HTTP/1.1\r\n")
		}
		frames[i] = stream[i].AppendFrame(nil)
		bytes += int64(len(frames[i]))
	}
	var dec packet.Decoder
	var p packet.Probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(frames[i%len(frames)], &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorIngestBatch: the detector's steady-state absorb — warm
// flows, resident destination/port sets — through the batch entry point.
// Each op is one pass over the whole stream.
func BenchmarkDetectorIngestBatch(b *testing.B) {
	const sources, perSource = 32, 64
	stream := make([]packet.Probe, 0, sources*perSource)
	for s := 0; s < sources; s++ {
		for i := 0; i < perSource; i++ {
			stream = append(stream, packet.Probe{
				Time:    int64(s*perSource+i) * int64(time.Millisecond),
				Src:     uint32(s + 1),
				Dst:     uint32(0x0a000000 + i%48),
				DstPort: uint16(20 + i%8),
				Seq:     uint32(i) * 977,
				Flags:   packet.FlagSYN,
			})
		}
	}
	d := core.NewDetector(core.Config{TelescopeSize: 65536}, func(*Scan) {})
	b.ReportAllocs()
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.IngestBatch(stream)
	}
}

// benchScans closes a deterministic stream through the detector to get
// realistic scans for the storage benchmarks.
func benchScans(n, sources int) []*core.Scan {
	var scans []*core.Scan
	d := core.NewDetector(core.Config{TelescopeSize: 65536},
		func(s *core.Scan) { scans = append(scans, s) })
	stream := makeAblationStream(n, sources)
	for i := range stream {
		d.Ingest(&stream[i])
	}
	d.FlushAll()
	return scans
}

// BenchmarkArchiveRawBlock: the pooled read path — ReadAt, checksum,
// DEFLATE — without per-record decode on top. This is the path the
// "archive-block-read" budget gates; a warmed scratch pool holds it near
// zero allocations.
func BenchmarkArchiveRawBlock(b *testing.B) {
	scans := benchScans(50000, 4096)
	path := b.TempDir() + "/bench.syn"
	aw, err := archive.Create(path, archive.WriterConfig{TelescopeSize: 65536})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range scans {
		if err := aw.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := archive.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	blocks := r.NumBlocks()
	var raw int64
	visit := func(data []byte) error { raw += int64(len(data)); return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RawBlock(i%blocks, visit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentStoreQuery: a full catalog query — every sealed segment,
// zone-map pruning, block decode — against a live segment store.
func BenchmarkSegmentStoreQuery(b *testing.B) {
	scans := benchScans(50000, 4096)
	sw, err := archive.OpenSegmentDir(b.TempDir(), archive.SegmentConfig{
		TelescopeSize: 65536, MaxSegmentScans: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range scans {
		if err := sw.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := sw.Seal(); err != nil {
		b.Fatal(err)
	}
	cat, err := archive.OpenCatalog(sw.Dir(), archive.CatalogConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cat.Close()
	defer sw.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := cat.View()
		n := 0
		for j := 0; j < v.Len(); j++ {
			err := v.Reader(j).Scans(archive.Filter{}, func(*core.Scan, enrich.Origin) { n++ })
			if err != nil {
				b.Fatal(err)
			}
		}
		v.Release()
		if n != len(scans) {
			b.Fatalf("query returned %d scans, want %d", n, len(scans))
		}
	}
}

// BenchmarkReactiveObserve: the reactive telescope's ingress — membership,
// responder, connection tracking — under a mixed SYN + handshake load.
func BenchmarkReactiveObserve(b *testing.B) {
	tel, err := telescope.New(telescope.Config{
		Blocks: []telescope.PartialBlock{
			{Prefix: inetmodel.MustPrefix("10.1.0.0/20"), MonitoredFraction: 0.5},
		},
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rt := reactive.New(tel, reactive.DefaultPolicy(7))
	probes := make([]packet.Probe, 4096)
	for i := range probes {
		probes[i] = packet.Probe{
			Time: int64(i) * int64(time.Millisecond), Src: uint32(0xC0A80000 + i%512),
			Dst: tel.At(i % tel.Size()), SrcPort: uint16(30000 + i%512),
			DstPort: uint16([]int{80, 443, 23, 8080}[i%4]),
			Seq:     uint32(i) * 131, Flags: packet.FlagSYN, TTL: 64,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		p.Time += int64(i/len(probes)) * int64(time.Second)
		rt.Observe(&p)
	}
}

func BenchmarkWorkloadGeneration2024(b *testing.B) {
	reg := inetmodel.BuildRegistry(benchSeed)
	for i := 0; i < b.N; i++ {
		s, err := workload.NewScenario(workload.Config{
			Year: 2024, Seed: benchSeed, Scale: benchScale,
			TelescopeSize: benchTel, Registry: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		n := uint64(0)
		s.Run(func(*packet.Probe) { n++ })
		b.SetBytes(int64(n))
	}
}

// Silence unused-import lint for analysis (used via the facade aliases).
var _ = analysis.Table1
