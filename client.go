package synscan

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/synscan/synscan/internal/rng"
)

// Client is a retrying HTTP client for a synserve instance — the
// well-behaved counterpart to the server's admission control. Backpressure
// responses (429 Too Many Requests, 503 while draining) and transient
// upstream failures (502, 504) are retried with exponential backoff and
// deterministic jitter; when the server sends a Retry-After hint, the
// client honors it instead of guessing. Build one with NewClient.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	r       *rng.Rand
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a retryable response is reattempted
// (default 3; 0 disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base and ceiling of the exponential backoff between
// retries (defaults 100ms and 5s). The n-th wait is base·2ⁿ ±25% jitter,
// capped at max — unless the server's Retry-After hint asks for longer.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// WithClientSeed seeds the jitter stream, making retry timing reproducible
// (defaults to 1; fleets should vary the seed per client or share one
// Client).
func WithClientSeed(seed uint64) ClientOption {
	return func(c *Client) { c.r = rng.New(seed).Derive("client-jitter") }
}

// NewClient builds a Client for the synserve at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:    baseURL,
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
		maxWait: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.r == nil {
		c.r = rng.New(1).Derive("client-jitter")
	}
	return c
}

// HTTPStatusError is a non-2xx response that survived the retry budget (or
// was not retryable at all). Body carries the server's JSON error text.
type HTTPStatusError struct {
	StatusCode int
	Body       string
}

func (e *HTTPStatusError) Error() string {
	return fmt.Sprintf("synserve: HTTP %d: %s", e.StatusCode, e.Body)
}

// retryable reports whether a status is worth reattempting: backpressure
// and transient upstream failures, never client errors.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// wait computes the pause before retry attempt n (0-based), honoring the
// server's Retry-After hint (whole seconds) when it asks for longer than
// the backoff would.
func (c *Client) wait(attempt int, retryAfter string) time.Duration {
	d := c.backoff << uint(attempt)
	if d > c.maxWait || d <= 0 {
		d = c.maxWait
	}
	// ±25% deterministic jitter so a rejected fleet does not resynchronize
	// into the same retry instant — the thundering herd it was bounced for.
	j := time.Duration(c.r.Int63n(int64(d)/2+1)) - d/4
	d += j
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil {
			if hint := time.Duration(secs) * time.Second; hint > d {
				d = hint
			}
		}
	}
	return d
}

// do issues one request (rebuilt per attempt — bodies cannot be replayed)
// with the retry/backoff policy, returning the final response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return b, nil
		}
		if !retryable(resp.StatusCode) || attempt >= c.retries {
			return nil, &HTTPStatusError{StatusCode: resp.StatusCode, Body: errText(b)}
		}
		select {
		case <-time.After(c.wait(attempt, resp.Header.Get("Retry-After"))):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// errText extracts the "error" field from a synserve JSON error body,
// falling back to the raw body.
func errText(b []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(b)
}

// RemoteScan is one selected scan as served by /v1/query and /v1/scans.
type RemoteScan struct {
	Src          string   `json:"src"`
	StartNS      int64    `json:"start_ns"`
	EndNS        int64    `json:"end_ns"`
	Packets      uint64   `json:"packets"`
	DistinctDsts int      `json:"distinct_dsts"`
	Ports        []uint16 `json:"ports"`
	Tool         string   `json:"tool"`
	Qualified    bool     `json:"qualified"`
	RatePPS      float64  `json:"rate_pps"`
	Coverage     float64  `json:"coverage"`
}

// RemoteResult is a /v1/query response: select mode fills Scans, aggregate
// mode fills Rows.
type RemoteResult struct {
	Matched   uint64       `json:"matched"`
	Returned  int          `json:"returned"`
	TotalRows int          `json:"total_rows"`
	Truncated bool         `json:"truncated"`
	Degraded  bool         `json:"degraded"`
	Scans     []RemoteScan `json:"scans"`
	Rows      []QueryRow   `json:"rows"`
}

// RunRemoteQuery executes q against the remote synserve via POST /v1/query,
// retrying through overload per the client's policy. The query is validated
// and canonicalized locally first, so malformed requests fail without a
// round trip.
func (c *Client) RunRemoteQuery(ctx context.Context, q *Query) (*RemoteResult, error) {
	q = q.Canonicalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	b, err := c.do(ctx, http.MethodPost, "/v1/query", body)
	if err != nil {
		return nil, err
	}
	var res RemoteResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("synscan: decoding /v1/query response: %w", err)
	}
	return &res, nil
}

// Stats fetches /v1/stats as raw JSON — archives, stores, cache and
// hardening counters.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	return c.do(ctx, http.MethodGet, "/v1/stats", nil)
}
