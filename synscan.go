// Package synscan reproduces the measurement system of "Have you SYN me?
// Characterizing Ten Years of Internet Scanning" (IMC 2024): a network-
// telescope pipeline that groups SYN probes into scan campaigns (§3.4),
// fingerprints the scanning tools behind them (§3.3), enriches origins, and
// regenerates every table and figure of the paper's evaluation on top of a
// calibrated synthetic workload (2015–2024).
//
// Three entry points cover most uses:
//
//   - Simulate runs one measurement year end to end and returns the
//     collected YearData, from which Table1, Table2, Figure2..Figure7 and
//     the section analyses derive their results.
//   - SimulateDecade runs all ten years with a shared synthetic Internet.
//   - NewAnalyzer ingests an arbitrary probe stream (e.g. parsed from a
//     pcap file via the Probe codec) through the campaign detector.
//
// The heavy lifting lives in the internal packages; this package re-exports
// the stable surface via type aliases, so the whole pipeline is usable
// without reaching into internals.
package synscan

import (
	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// Core data types, re-exported.
type (
	// Probe is one observed TCP probe (see Probe.IsSYN, MarshalFrame,
	// UnmarshalFrame for the wire codec).
	Probe = packet.Probe
	// Scan is one detected campaign (or sub-threshold flow).
	Scan = core.Scan
	// Tool identifies a scanning tool family.
	Tool = tools.Tool
	// ScannerType classifies a source (institutional, residential, ...).
	ScannerType = inetmodel.ScannerType
	// Origin is the enrichment result for one source address.
	Origin = enrich.Origin
	// Disclosure models a vulnerability-disclosure event (Figure 1).
	Disclosure = workload.Disclosure
	// YearData is everything one simulated measurement year yields.
	YearData = analysis.YearData
	// Table1Row / Table2Row are the paper's table rows.
	Table1Row = analysis.Table1Row
	Table2Row = analysis.Table2Row
	// KSResult and PearsonResult carry statistical test outcomes.
	KSResult      = stats.KSResult
	PearsonResult = stats.PearsonResult
	// Telescope is a configured capture deployment.
	Telescope = telescope.Telescope
	// Metrics is a pipeline-metrics registry: counters, gauges and
	// histograms keyed by dot-separated names, race-safe to snapshot while
	// the pipeline runs. Create one with NewMetrics and pass it via
	// Config.Metrics or the Analyzer's WithMetrics option.
	Metrics = obs.Registry
	// PipelineSnapshot is a point-in-time capture of a Metrics registry
	// (see YearData.PipelineStats and Analyzer.Stats).
	PipelineSnapshot = obs.Snapshot
)

// NewMetrics creates an empty pipeline-metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tool constants.
const (
	ToolUnknown = tools.ToolUnknown
	ToolZMap    = tools.ToolZMap
	ToolMasscan = tools.ToolMasscan
	ToolNMap    = tools.ToolNMap
	ToolMirai   = tools.ToolMirai
	ToolUnicorn = tools.ToolUnicorn
	ToolCustom  = tools.ToolCustom
)

// Scanner-type constants (Table 2 order).
const (
	TypeUnknown       = inetmodel.TypeUnknown
	TypeResidential   = inetmodel.TypeResidential
	TypeHosting       = inetmodel.TypeHosting
	TypeEnterprise    = inetmodel.TypeEnterprise
	TypeInstitutional = inetmodel.TypeInstitutional
)

// Config parameterizes one simulated measurement year.
type Config struct {
	// Year selects the calibration profile, 2015–2024.
	Year int
	// Seed drives all randomness; equal configs reproduce byte-identical
	// probe streams.
	Seed uint64
	// Scale shrinks the paper's traffic volumes (default 0.002).
	Scale float64
	// TelescopeSize is the monitored address count (default 4096); the
	// campaign thresholds are rescaled consistently.
	TelescopeSize int
	// Disclosures injects vulnerability-disclosure events.
	Disclosures []Disclosure
	// Workers shards campaign detection across this many goroutines
	// (0 or 1 keeps the sequential detector). The detected campaign
	// multiset is identical either way.
	Workers int
	// Metrics, when non-nil, instruments the whole simulated pipeline —
	// telescope ingress, detector, shard queues, enrichment cache,
	// per-stage wall time — and stores a final snapshot in the returned
	// YearData.PipelineStats. Nil (the default) disables all
	// instrumentation at negligible cost.
	Metrics *Metrics
}

// Years lists the measured years, 2015–2024.
func Years() []int { return workload.Years() }

// Simulate runs one measurement year end to end: workload generation,
// telescope capture, campaign detection, fingerprinting, enrichment.
func Simulate(cfg Config) (*YearData, error) {
	s, err := workload.NewScenario(workload.Config{
		Year: cfg.Year, Seed: cfg.Seed, Scale: cfg.Scale,
		TelescopeSize: cfg.TelescopeSize, Disclosures: cfg.Disclosures,
	})
	if err != nil {
		return nil, err
	}
	return analysis.CollectWith(s, analysis.CollectConfig{
		Workers: cfg.Workers, Metrics: cfg.Metrics,
	}), nil
}

// SimulateDecade runs all ten years over one shared synthetic Internet.
func SimulateDecade(seed uint64, scale float64, telescopeSize int) ([]*YearData, error) {
	return analysis.Decade(seed, scale, telescopeSize)
}

// SimulateDecadeWorkers is SimulateDecade with each year's campaign
// detection sharded across the given number of goroutines.
func SimulateDecadeWorkers(seed uint64, scale float64, telescopeSize, workers int) ([]*YearData, error) {
	return analysis.DecadeWorkers(seed, scale, telescopeSize, workers)
}

// Table1 computes the headline table (volume, top ports, tools) from
// collected years; topN controls the ranking depth (the paper uses 5).
func Table1(years []*YearData, topN int) []Table1Row {
	return analysis.Table1(years, topN)
}

// Table2 computes the scanner-type breakdown.
func Table2(years []*YearData) []Table2Row {
	return analysis.Table2(years)
}

// Analyzer ingests an arbitrary time-ordered probe stream through the
// telescope-style SYN filter and the campaign detector — the programmatic
// equivalent of feeding a capture file to cmd/synalyze.
//
// Two delivery models exist. By default closed flows accumulate internally
// and Finish returns them all. With the WithOnScan option they are instead
// delivered to the callback as each flow closes and never retained, so a
// long replay runs in memory bounded by the open-flow table rather than by
// the total campaign count.
type Analyzer struct {
	det    core.Ingester
	met    *Metrics
	onScan func(*Scan)
	scans  []*Scan

	accepted, notSYN *obs.Counter
}

// AnalyzerOption configures NewAnalyzer.
type AnalyzerOption func(*analyzerOptions)

type analyzerOptions struct {
	workers int
	metrics *Metrics
	onScan  func(*Scan)
}

// WithWorkers shards the analyzer's campaign detection across n goroutines
// (n <= 1 keeps the sequential detector). Ingest stays single-producer; the
// detected campaign multiset is identical to the sequential analyzer. With
// workers > 1 closed flows surface only at Finish (the sharded detector's
// merging flush), in its canonical (End, Start, Src) order; sequentially
// they surface as their flows close.
func WithWorkers(n int) AnalyzerOption {
	return func(o *analyzerOptions) { o.workers = n }
}

// WithMetrics uses the given registry for the analyzer's pipeline metrics
// instead of the private one it would otherwise create — share one registry
// to aggregate several analyzers, or to expose the analyzer's metrics
// through an existing sink.
func WithMetrics(reg *Metrics) AnalyzerOption {
	return func(o *analyzerOptions) { o.metrics = reg }
}

// WithOnScan delivers each closed flow to fn instead of accumulating it for
// Finish. fn runs on the Ingest goroutine (sequential detection) or on the
// Finish goroutine (sharded detection); it must not call back into the
// Analyzer. Finish still flushes and drains through the same callback, and
// then returns nil. This is the streaming model: nothing is retained after
// delivery, so memory stays bounded by open flows, not total campaigns.
func WithOnScan(fn func(*Scan)) AnalyzerOption {
	return func(o *analyzerOptions) { o.onScan = fn }
}

// NewAnalyzer creates an Analyzer for a telescope of the given size.
// The paper's thresholds apply: 100 distinct destinations, 100 pps
// extrapolated, 1 h expiry.
func NewAnalyzer(telescopeSize int, opts ...AnalyzerOption) *Analyzer {
	var o analyzerOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.metrics == nil {
		o.metrics = NewMetrics()
	}
	a := &Analyzer{
		met:      o.metrics,
		onScan:   o.onScan,
		accepted: o.metrics.Counter("analyzer.packets.accepted"),
		notSYN:   o.metrics.Counter("analyzer.drop.not_syn"),
	}
	collect := func(s *Scan) {
		if a.onScan != nil {
			a.onScan(s)
			return
		}
		a.scans = append(a.scans, s)
	}
	a.det = core.NewDetector(core.Config{TelescopeSize: telescopeSize}, collect,
		core.WithWorkers(o.workers), core.WithMetrics(o.metrics))
	return a
}

// Ingest processes one probe. Non-SYN packets are ignored, as a telescope
// capture would drop them.
func (a *Analyzer) Ingest(p *Probe) {
	if !p.IsSYN() {
		a.notSYN.Inc()
		return
	}
	a.accepted.Inc()
	a.det.Ingest(p)
}

// Finish flushes open flows and returns every closed flow, qualified
// campaigns and background noise alike. Under WithOnScan the flushed flows
// go to the callback instead and Finish returns nil.
func (a *Analyzer) Finish() []*Scan {
	a.det.FlushAll()
	return a.scans
}

// Stats snapshots the analyzer's pipeline metrics: ingress accept/drop
// counters, detector flow lifecycle, and — with WithWorkers — shard queue
// behaviour. Safe to call from any goroutine while Ingest runs.
func (a *Analyzer) Stats() PipelineSnapshot { return a.met.Snapshot() }

// Campaign-archive surface, re-exported. An archive persists detected
// campaigns (not raw probes) in a compressed, zone-map-indexed block
// format, so scan-level analyses re-run as indexed reads instead of
// re-simulating or re-replaying (see internal/archive).
type (
	// ArchiveWriter spools scans into an archive file or stream.
	ArchiveWriter = archive.Writer
	// ArchiveWriterConfig parameterizes NewArchiveWriter / CreateArchive.
	ArchiveWriterConfig = archive.WriterConfig
	// ArchiveReader queries an archive with zone-map predicate pushdown.
	ArchiveReader = archive.Reader
	// ArchiveFilter selects scans by year, tool, port, source prefix,
	// rate, or qualification; its zero value matches everything.
	ArchiveFilter = archive.Filter
	// ArchiveReaderOption configures OpenArchive (see WithSkipCorrupt).
	ArchiveReaderOption = archive.ReaderOption
)

// WithSkipCorrupt opens an archive in degraded mode: blocks failing their
// checksum are skipped and counted (ArchiveReader.CorruptBlocks) instead of
// aborting the query.
func WithSkipCorrupt() ArchiveReaderOption { return archive.WithSkipCorrupt() }

// CreateArchive creates an archive file for writing.
func CreateArchive(path string, cfg ArchiveWriterConfig) (*ArchiveWriter, error) {
	return archive.Create(path, cfg)
}

// OpenArchive opens an archive file for querying.
func OpenArchive(path string, opts ...ArchiveReaderOption) (*ArchiveReader, error) {
	return archive.Open(path, opts...)
}

// Segment-store surface, re-exported. A segment store is the live variant of
// the archive: a directory of bounded sealed segments plus an atomically-
// replaced manifest, grown by a SegmentWriter while Catalogs (and synserve)
// discover new segments without restarting, and tidied by a Compactor that
// merges runs of small segments LSM-style (see internal/archive).
type (
	// SegmentWriter appends scans to a segment store, sealing bounded
	// segments and publishing each through the manifest.
	SegmentWriter = archive.SegmentWriter
	// SegmentConfig parameterizes OpenSegmentDir (rotation bounds etc.).
	SegmentConfig = archive.SegmentConfig
	// SegmentMeta is one sealed segment's manifest entry.
	SegmentMeta = archive.SegmentMeta
	// Catalog is the read side of a segment store: refreshable, with
	// refcounted immutable views for in-flight queries.
	Catalog = archive.Catalog
	// CatalogConfig parameterizes OpenCatalog.
	CatalogConfig = archive.CatalogConfig
	// CatalogView is one query's frozen segment set.
	CatalogView = archive.CatalogView
	// Compactor merges runs of small sealed segments inside a live store.
	Compactor = archive.Compactor
	// CompactorConfig parameterizes NewCompactor.
	CompactorConfig = archive.CompactorConfig
)

// OpenSegmentDir opens (creating if needed) a segment store for appending,
// recovering from any crash the previous writer suffered.
func OpenSegmentDir(dir string, cfg SegmentConfig) (*SegmentWriter, error) {
	return archive.OpenSegmentDir(dir, cfg)
}

// OpenCatalog opens a segment store for querying.
func OpenCatalog(dir string, cfg CatalogConfig) (*Catalog, error) {
	return archive.OpenCatalog(dir, cfg)
}

// NewCompactor creates a compactor over an open segment store.
func NewCompactor(sw *SegmentWriter, cfg CompactorConfig) *Compactor {
	return archive.NewCompactor(sw, cfg)
}

// ArchiveYear appends one collected year's campaigns (with origins) to an
// archive writer created with ArchiveWriterConfig.Origins.
func ArchiveYear(w *ArchiveWriter, yd *YearData) error {
	return analysis.ArchiveYear(w, yd)
}

// CollectArchive rebuilds one year's scan-level YearData from an archive;
// packet-level aggregates stay empty (they need the raw probe stream).
func CollectArchive(rd *ArchiveReader, year int) (*YearData, error) {
	return analysis.CollectArchive(rd, year)
}

// CollectArchiveYears loads every calibrated year present in the archive.
func CollectArchiveYears(rd *ArchiveReader) ([]*YearData, error) {
	return analysis.CollectArchiveYears(rd)
}

// PaperTelescopeSize is the monitored-address count of the paper's
// deployment (§3.2).
const PaperTelescopeSize = 71536

// NewPaperTelescope builds the three-partial-/16 deployment of §3.2.
func NewPaperTelescope(seed uint64) (*Telescope, error) {
	return telescope.New(telescope.PaperConfig(seed))
}
