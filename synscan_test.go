package synscan

import (
	"testing"

	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

func TestSimulateYear(t *testing.T) {
	yd, err := Simulate(Config{Year: 2020, Seed: 1, Scale: 0.0004, TelescopeSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if yd.Year != 2020 || yd.AcceptedPackets == 0 {
		t.Fatalf("year data: %+v", yd.Year)
	}
	if len(yd.QualifiedScans()) == 0 {
		t.Fatal("no qualified campaigns")
	}
}

func TestSimulateUnknownYear(t *testing.T) {
	if _, err := Simulate(Config{Year: 1995}); err == nil {
		t.Fatal("unknown year must error")
	}
}

func TestSimulateDecadeAndTables(t *testing.T) {
	years, err := SimulateDecade(3, 0.0003, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(years) != len(Years()) {
		t.Fatalf("%d years", len(years))
	}
	t1 := Table1(years, 5)
	if len(t1) != 10 || t1[0].Year != 2015 || t1[9].Year != 2024 {
		t.Fatalf("Table1 rows wrong: %d", len(t1))
	}
	if t1[9].PacketsPerDay <= t1[0].PacketsPerDay {
		t.Fatal("traffic must grow across the decade")
	}
	t2 := Table2(years)
	if len(t2) != 5 {
		t.Fatalf("Table2 rows: %d", len(t2))
	}
}

func TestAnalyzerOnSyntheticStream(t *testing.T) {
	a := NewAnalyzer(PaperTelescopeSize)
	r := rng.New(9)
	pr := tools.NewMasscan(0x0A0B0C0D, r)
	// A fast masscan sweep: 300 telescope hits in 60 seconds.
	for i := 0; i < 300; i++ {
		p := pr.Probe(0xC0000000|uint32(i), 443)
		p.Time = int64(i) * 200e6
		a.Ingest(&p)
	}
	// Backscatter must be ignored.
	synack := Probe{Time: 1, Src: 1, Dst: 2, Flags: 0x12}
	a.Ingest(&synack)
	scans := a.Finish()
	if len(scans) != 1 {
		t.Fatalf("%d scans", len(scans))
	}
	s := scans[0]
	if !s.Qualified || s.Tool != ToolMasscan || s.DistinctDsts != 300 {
		t.Fatalf("scan: %+v", s)
	}
}

func TestNewPaperTelescope(t *testing.T) {
	tel, err := NewPaperTelescope(1)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Size() != PaperTelescopeSize {
		t.Fatalf("size = %d", tel.Size())
	}
}

func TestConstantsRoundTrip(t *testing.T) {
	if ToolZMap.String() != "ZMap" || ToolMirai.String() != "Mirai-like" {
		t.Fatal("tool aliases broken")
	}
	if TypeInstitutional.String() != "Institutional" {
		t.Fatal("type aliases broken")
	}
}

func TestProbeAliasCodec(t *testing.T) {
	p := Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: 0x02}
	frame := p.MarshalFrame()
	var q Probe
	if err := q.UnmarshalFrame(frame); err != nil {
		t.Fatal(err)
	}
	if q.Dst != 2 || !q.IsSYN() {
		t.Fatalf("codec alias: %+v", q)
	}
}
