package synscan

import "testing"

// TestBenchAllocGate is the bench-smoke allocation gate: it runs the gated
// hot-path benchmarks through testing.Benchmark and fails the build if their
// steady-state allocations regress. The per-package internal/alloctest
// budgets enforce the same contracts at finer grain with explicit warmup;
// this gate proves them end to end, through the same entry points the
// commands use, at benchmark iteration counts where one-time warmup (flow
// creation, pool fills) amortizes to zero.
//
// Budgets: frame decode and the detector's batch absorb are allocation-free;
// the pooled archive block read allows 2 allocs/op of sync.Pool-miss
// headroom (see internal/archive's TestAllocBudgetBlockRead).
func TestBenchAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full benchmark runs")
	}
	gates := []struct {
		name  string
		bench func(*testing.B)
		max   int64
	}{
		{"frame-decode", BenchmarkDecodeFrame, 0},
		{"detector-ingest-batch", BenchmarkDetectorIngestBatch, 0},
		{"archive-raw-block", BenchmarkArchiveRawBlock, 2},
	}
	for _, g := range gates {
		res := testing.Benchmark(g.bench)
		if got := res.AllocsPerOp(); got > g.max {
			t.Errorf("%s: %d allocs/op over budget %d (%s)", g.name, got, g.max, res.MemString())
		} else {
			t.Logf("%s: %d allocs/op (budget %d, N=%d)", g.name, got, g.max, res.N)
		}
	}
}
