package synscan

import (
	"context"

	"github.com/synscan/synscan/internal/query"
)

// Query-engine surface, re-exported. A Query is a typed request — filter
// expression, grouping dimensions, aggregates — that one streaming engine
// executes everywhere campaigns live: archive files (with zone-map predicate
// pushdown), live segment stores, and in-memory YearData collections. The
// same engine backs synserve's /v1/query endpoint and the legacy table
// endpoints, so a query built here computes exactly what the service serves
// (see internal/query).
//
//	q, err := synscan.NewQuery().
//	        Years(2020, 2021).
//	        Qualified(true).
//	        GroupBy(synscan.FieldTool).
//	        Count().
//	        TopK(synscan.FieldPort, 10).
//	        Build()
//	res, err := synscan.RunQuery(ctx, q, synscan.ArchiveSource(rd))
type (
	// Query is a validated, canonicalized query (build with NewQuery or
	// ParseQuery). Its Key method yields a canonical cache key: two
	// semantically identical queries share one key.
	Query = query.Query
	// QueryBuilder assembles a Query fluently; see NewQuery.
	QueryBuilder = query.Builder
	// QueryResult is a finished query: matched count plus either selected
	// scans or aggregate rows.
	QueryResult = query.Result
	// QueryRow is one aggregate-mode result row.
	QueryRow = query.Row
	// QueryExpr is a filter-expression node (combine with QueryAnd / QueryOr
	// / QueryNot).
	QueryExpr = query.Expr
	// QueryField names a queryable campaign attribute.
	QueryField = query.Field
	// QuerySource is anything the engine can execute against under
	// predicate pushdown.
	QuerySource = query.Source
)

// Queryable fields (see the query package for the full capability matrix).
const (
	FieldYear      = query.FieldYear
	FieldTool      = query.FieldTool
	FieldPort      = query.FieldPort
	FieldQualified = query.FieldQualified
	FieldSrc       = query.FieldSrc
	FieldTime      = query.FieldTime
	FieldRate      = query.FieldRate
	FieldPackets   = query.FieldPackets
	FieldDsts      = query.FieldDsts
	FieldNPorts    = query.FieldNPorts
	FieldDuration  = query.FieldDuration
	FieldCoverage  = query.FieldCoverage
	FieldCountry   = query.FieldCountry
	FieldASN       = query.FieldASN
	FieldType      = query.FieldType
	FieldOrg       = query.FieldOrg
)

// NewQuery starts a fluent query builder (matches everything, selects scans
// until filters, group-bys, or aggregates are added).
func NewQuery() *QueryBuilder { return query.NewBuilder() }

// ParseQuery parses the compact JSON request form served at /v1/query into a
// validated Query. Malformed requests return a client error (never a panic).
func ParseQuery(data []byte) (*Query, error) { return query.Parse(data) }

// IsQueryClientError reports whether err is a 400-class request error (bad
// syntax, unknown field, out-of-range parameter) rather than an execution
// failure.
func IsQueryClientError(err error) bool { return query.IsClientError(err) }

// RunQuery executes q against the sources in order, streaming per-block
// aggregation with zone-map pushdown where the source supports it. Results
// are deterministic in source and stream order.
func RunQuery(ctx context.Context, q *Query, srcs ...QuerySource) (*QueryResult, error) {
	return query.Run(ctx, q, srcs...)
}

// ArchiveSource adapts an open archive reader for RunQuery; the query's
// filter prunes blocks via zone maps before decompression.
func ArchiveSource(rd *ArchiveReader) QuerySource { return query.ReaderSource{R: rd} }

// CatalogSource adapts a segment-store view for RunQuery.
func CatalogSource(v *CatalogView) QuerySource { return query.ViewSource{V: v} }

// YearSource adapts one simulated year's in-memory campaigns for RunQuery.
func YearSource(yd *YearData) QuerySource {
	return query.SliceSource{Scans: yd.Scans, Origins: yd.ScanOrigins}
}

// ScanSource adapts an arbitrary in-memory campaign list (e.g. an Analyzer's
// Finish output) for RunQuery. origins may be nil, or must parallel scans.
func ScanSource(scans []*Scan, origins []Origin) QuerySource {
	return query.SliceSource{Scans: scans, Origins: origins}
}

// Filter-expression constructors for QueryBuilder.Where. The builder's own
// methods (Years, Ports, Qualified, ...) cover conjunctions; these compose
// disjunctions and negations.
var (
	// QueryAnd / QueryOr / QueryNot combine filter expressions.
	QueryAnd = query.And
	QueryOr  = query.Or
	QueryNot = query.Not
	// Leaf predicates over campaign fields.
	QueryYearIn      = query.YearIn
	QueryToolIn      = query.ToolIn
	QueryPortAny     = query.PortAny
	QueryQualified   = query.Qualified
	QueryRateBetween = query.RateBetween
	QueryTimeBetween = query.TimeBetween
	QuerySrcIn       = query.SrcIn
	QueryASNIn       = query.ASNIn
	QueryTypeIn      = query.TypeIn
	QueryCountryIn   = query.CountryIn
	QueryOrgIn       = query.OrgIn
)
