package synscan_test

import (
	"fmt"

	synscan "github.com/synscan/synscan"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// ExampleAnalyzer feeds a hand-built Masscan sweep through the campaign
// detector: 200 telescope hits in 40 seconds qualify as one campaign with
// the Masscan fingerprint.
func ExampleAnalyzer() {
	a := synscan.NewAnalyzer(synscan.PaperTelescopeSize)
	pr := tools.NewMasscan(0x0A000001, rng.New(1))
	for i := 0; i < 200; i++ {
		p := pr.Probe(0xC6336400|uint32(i), 443) // 198.51.100.0/24-ish targets
		p.Time = int64(i) * 200e6                // 5 probes/s observed
		a.Ingest(&p)
	}
	for _, s := range a.Finish() {
		fmt.Printf("tool=%v dsts=%d qualified=%v\n", s.Tool, s.DistinctDsts, s.Qualified)
	}
	// Output: tool=Masscan dsts=200 qualified=true
}

// ExampleProbe_UnmarshalFrame decodes a raw Ethernet+IPv4+TCP frame — the
// path synalyze takes for every pcap record.
func ExampleProbe_UnmarshalFrame() {
	in := synscan.Probe{Src: 0x01020304, Dst: 0x05060708, SrcPort: 40000,
		DstPort: 23, Seq: 0x05060708, Flags: 0x02}
	frame := in.MarshalFrame()

	var out synscan.Probe
	if err := out.UnmarshalFrame(frame); err != nil {
		panic(err)
	}
	// seq == dst is the Mirai fingerprint (§3.3).
	fmt.Printf("syn=%v mirai=%v\n", out.IsSYN(), out.Seq == out.Dst)
	// Output: syn=true mirai=true
}

// ExampleSimulate runs a full measurement year; unchecked output because
// volumes depend on the configuration.
func ExampleSimulate() {
	yd, err := synscan.Simulate(synscan.Config{
		Year: 2020, Seed: 42, Scale: 0.0005, TelescopeSize: 2048,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("campaigns detected: %v", len(yd.QualifiedScans()) > 0)
}
