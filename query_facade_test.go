package synscan

import (
	"context"
	"path/filepath"
	"testing"
)

// TestFacadeQueryBuilder: the re-exported fluent builder runs one query
// against a simulated year and against the same year written to an archive,
// and both paths agree — the in-memory source and the zone-map-pushdown
// reader compute identical exact aggregates.
func TestFacadeQueryBuilder(t *testing.T) {
	yd, _ := facadeData(t)

	q, err := NewQuery().
		Qualified(true).
		GroupBy(FieldTool).
		Count().
		Sum(FieldPackets).
		OrderByKey().
		Build()
	if err != nil {
		t.Fatal(err)
	}

	mem, err := RunQuery(context.Background(), q, YearSource(yd))
	if err != nil {
		t.Fatal(err)
	}
	if mem.Matched == 0 || len(mem.Rows) == 0 {
		t.Fatalf("empty result: matched=%d rows=%d", mem.Matched, len(mem.Rows))
	}

	path := filepath.Join(t.TempDir(), "facade-query.syna")
	w, err := CreateArchive(path, ArchiveWriterConfig{
		TelescopeSize: 2048, Origins: true, BlockBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ArchiveYear(w, yd); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	arc, err := RunQuery(context.Background(), q, ArchiveSource(rd))
	if err != nil {
		t.Fatal(err)
	}
	if arc.Matched != mem.Matched || len(arc.Rows) != len(mem.Rows) {
		t.Fatalf("archive/memory disagree: matched %d vs %d, rows %d vs %d",
			arc.Matched, mem.Matched, len(arc.Rows), len(mem.Rows))
	}
	for i := range mem.Rows {
		m, a := mem.Rows[i], arc.Rows[i]
		if m.Key[0].Num != a.Key[0].Num ||
			m.Aggs[0].Count != a.Aggs[0].Count || m.Aggs[1].Int != a.Aggs[1].Int {
			t.Fatalf("row %d differs: %+v vs %+v", i, m, a)
		}
	}

	// An Or/Not expression through the re-exported constructors.
	nq, err := NewQuery().
		Where(QueryOr(QueryToolIn(ToolZMap), QueryToolIn(ToolMasscan))).
		Where(QueryNot(QueryQualified(false))).
		GroupBy(FieldTool).
		Count().
		OrderByKey().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuery(context.Background(), nq, YearSource(yd))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		tl := Tool(row.Key[0].Num)
		if tl != ToolZMap && tl != ToolMasscan {
			t.Fatalf("unexpected tool group %v", tl)
		}
	}

	// ParseQuery accepts the wire form and yields the same canonical key.
	pq, err := ParseQuery([]byte(`{"where":{"field":"qualified","eq":true},
	        "group_by":["tool"],
	        "aggs":[{"op":"count"},{"op":"sum","field":"packets"}],
	        "order_by":"key"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := pq.Canonicalize().Key(); got != q.Key() {
		t.Fatalf("wire form and builder disagree on canonical key:\n%s\n%s",
			got, q.Key())
	}
	if _, err := ParseQuery([]byte(`{"group_by":["nope"]}`)); !IsQueryClientError(err) {
		t.Fatalf("bad field should be a client error, got %v", err)
	}
}
