package main

import (
	"math"
	"strconv"
	"time"
)

// admission bounds the number of archive scans running at once. Slots are a
// fixed-capacity token channel acquired fast-fail: when every slot is taken
// the server answers 429 with a Retry-After hint immediately, instead of
// queueing work it cannot start — queue collapse under overload is the
// failure mode this exists to prevent. Cache hits and singleflight followers
// never take a slot; only flight leaders (the requests that actually scan)
// are admitted.
//
// A nil *admission admits everything (the -max-inflight 0 configuration).
type admission struct {
	slots      chan struct{}
	retryAfter time.Duration
}

func newAdmission(maxInflight int, retryAfter time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &admission{
		slots:      make(chan struct{}, maxInflight),
		retryAfter: retryAfter,
	}
}

// tryAcquire claims a slot without waiting.
func (a *admission) tryAcquire() bool {
	if a == nil {
		return true
	}
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (a *admission) release() {
	if a != nil {
		<-a.slots
	}
}

// inflight reports the number of claimed slots, for the server.inflight
// gauge.
func (a *admission) inflight() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.slots))
}

// retryAfterHeader renders the hint as whole seconds (minimum 1), the form
// every retrying client understands.
func (a *admission) retryAfterHeader() string {
	d := time.Second
	if a != nil && a.retryAfter > 0 {
		d = a.retryAfter
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
