package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/obs"
)

// hardenedServer builds a server over the standard test archive with the
// given config and an installable exec hook, returning the test server and
// registry. The hook (when used) runs in flight leaders after admission and
// before the engine walk — the seam every overload test here pivots on.
func hardenedServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server, *obs.Registry) {
	t.Helper()
	path, _ := testArchive(t, false)
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	reg := obs.NewRegistry()
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, cfg, reg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

// waitCounter polls a counter until it reaches want or the deadline passes.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counter(name) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (at %d)",
		name, want, reg.Snapshot().Counter(name))
}

// TestSingleflightCollapse: N identical in-flight POST /v1/query requests
// run ONE engine scan. The first arrival leads; the rest attach to its
// flight and share the result. Asserted through the admission counter (one
// admitted scan), the singleflight counters, and the X-Cache header split.
func TestSingleflightCollapse(t *testing.T) {
	const n = 8
	srv, ts, reg := hardenedServer(t, serverConfig{cacheEntries: 32, timeout: 30 * time.Second})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.execHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	body := `{"group_by":["tool"],"aggs":[{"op":"count"}]}`
	type reply struct {
		status int
		cache  string
		body   string
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				replies <- reply{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Cache"), string(b)}
		}()
	}

	<-entered // the leader is holding the flight open
	// Wait until all n-1 followers have attached before letting it run.
	waitCounter(t, reg, "server.singleflight.shared", n-1)
	close(release)

	var miss, shared int
	var bodies []string
	for i := 0; i < n; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("request got status %d: %s", r.status, r.body)
		}
		switch r.cache {
		case "miss":
			miss++
		case "shared":
			shared++
		default:
			t.Fatalf("unexpected X-Cache %q", r.cache)
		}
		bodies = append(bodies, r.body)
	}
	if miss != 1 || shared != n-1 {
		t.Fatalf("X-Cache split miss=%d shared=%d, want 1/%d", miss, shared, n-1)
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatalf("shared flight produced divergent bodies:\n%s\n%s", bodies[0], b)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("server.admission.admitted"); got != 1 {
		t.Fatalf("admitted = %d, want exactly 1 engine run for %d requests", got, n)
	}
	if got := snap.Counter("server.singleflight.leaders"); got != 1 {
		t.Fatalf("singleflight leaders = %d, want 1", got)
	}
	if got := snap.Counter("server.singleflight.shared"); got != n-1 {
		t.Fatalf("singleflight shared = %d, want %d", got, n-1)
	}

	// The flight's body was cached: the same query now hits without joining
	// any flight.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "hit" {
		t.Fatalf("post-flight X-Cache = %q, want hit", c)
	}
}

// TestAdmissionControl429: with one scan slot, a second distinct query is
// bounced immediately with 429 + Retry-After while the first is running —
// and succeeds once the slot frees.
func TestAdmissionControl429(t *testing.T) {
	srv, ts, reg := hardenedServer(t, serverConfig{
		cacheEntries: 32, timeout: 30 * time.Second,
		maxInflight: 1, retryAfter: 2 * time.Second,
	})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.execHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	slow := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/scans?year=2020&limit=5")
		if err != nil {
			slow <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			slow <- fmt.Errorf("slow query status %d", resp.StatusCode)
			return
		}
		slow <- nil
	}()
	<-entered // the only slot is now held

	resp, err := http.Get(ts.URL + "/v1/scans?year=2023&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body %q is not a JSON error: %v", body, err)
	}
	if got := reg.Snapshot().Counter("server.admission.rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	close(release)
	if err := <-slow; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}

	// Slot free again: the previously bounced query now runs.
	resp2, err := http.Get(ts.URL + "/v1/scans?year=2023&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp2.StatusCode)
	}
}

// scanListBody is the shared shape of /v1/scans responses, streamed or not.
type scanListBody struct {
	Matched   uint64            `json:"matched"`
	Returned  int               `json:"returned"`
	Truncated bool              `json:"truncated"`
	Degraded  bool              `json:"degraded"`
	Scans     []json.RawMessage `json:"scans"`
}

// TestStreamedScanList: above the stream threshold a select-mode response is
// written chunked, record by record — and decodes to exactly the same
// content as the one-shot marshaled body, so clients cannot tell the paths
// apart except by transfer encoding.
func TestStreamedScanList(t *testing.T) {
	_, streamTS, streamReg := hardenedServer(t, serverConfig{cacheEntries: 32, streamAbove: 10})
	_, plainTS, _ := hardenedServer(t, serverConfig{cacheEntries: 32, streamAbove: -1})

	get := func(ts *httptest.Server) (*http.Response, scanListBody) {
		resp, err := http.Get(ts.URL + "/v1/scans?limit=100")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var body scanListBody
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, raw)
		}
		return resp, body
	}

	streamResp, streamed := get(streamTS)
	_, plain := get(plainTS)

	if len(streamResp.TransferEncoding) == 0 || streamResp.TransferEncoding[0] != "chunked" {
		t.Fatalf("streamed response TransferEncoding = %v, want chunked", streamResp.TransferEncoding)
	}
	if got := streamReg.Snapshot().Counter("server.stream.responses"); got != 1 {
		t.Fatalf("server.stream.responses = %d, want 1", got)
	}
	if streamed.Matched != plain.Matched || streamed.Returned != plain.Returned ||
		streamed.Truncated != plain.Truncated || streamed.Degraded != plain.Degraded {
		t.Fatalf("streamed header fields %+v differ from plain %+v", streamed, plain)
	}
	if len(streamed.Scans) != 100 {
		t.Fatalf("streamed %d scans, want 100", len(streamed.Scans))
	}
	if !reflect.DeepEqual(streamed.Scans, plain.Scans) {
		t.Fatal("streamed scan records differ from one-shot marshaled records")
	}

	// The streamed body was small enough for the cache tee: the repeat is a
	// straight cache hit, not a second stream.
	resp2, err := http.Get(streamTS.URL + "/v1/scans?limit=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if c := resp2.Header.Get("X-Cache"); c != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", c)
	}
}

// TestDrainRefusesNewRequests: after startDrain every new request is bounced
// with 503 + Connection: close + Retry-After, while a request already in
// flight runs to completion — the SIGTERM drain contract.
func TestDrainRefusesNewRequests(t *testing.T) {
	srv, ts, reg := hardenedServer(t, serverConfig{cacheEntries: 32, timeout: 30 * time.Second})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.execHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/scans?limit=3")
		if err != nil {
			inflight <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request status %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	<-entered

	srv.startDrain()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain status = %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if !resp.Close {
		t.Fatal("draining 503 missing Connection: close")
	}
	if got := reg.Snapshot().Counter("server.drain.refused"); got != 1 {
		t.Fatalf("drain.refused = %d, want 1", got)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("request admitted before drain must complete: %v", err)
	}
}

// TestTimeoutGoroutineCleanup is the regression test for scan goroutines
// outliving their 504: after a batch of deadline-expired queries, the
// process goroutine count settles back to its baseline — nothing keeps
// decoding blocks for a response that was already written.
func TestTimeoutGoroutineCleanup(t *testing.T) {
	_, ts, _ := hardenedServer(t, serverConfig{cacheEntries: 32, timeout: time.Nanosecond})

	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/scans?limit=%d", ts.URL, 10+i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", resp.StatusCode)
		}
	}

	// Goroutine counts are noisy (keep-alive conns, test runner); allow the
	// count time to settle and a small slack over baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after 504s: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCacheByteBound: the result cache respects its byte budget — bodies
// too large for the per-entry cap are never stored, total bytes stay under
// the bound, and the gauge reports it.
func TestCacheByteBound(t *testing.T) {
	const maxBytes = 4096 // per-entry cap: 512 bytes
	_, ts, reg := hardenedServer(t, serverConfig{cacheEntries: 100, cacheBytes: maxBytes, streamAbove: -1})

	// A big scan list blows the per-entry cap: both fetches miss.
	big := ts.URL + "/v1/scans?limit=50"
	for i := 0; i < 2; i++ {
		resp, err := http.Get(big)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if c := resp.Header.Get("X-Cache"); c != "miss" {
			t.Fatalf("oversized body fetch %d: X-Cache = %q, want miss (never cached)", i, c)
		}
	}

	// Small aggregate bodies cache normally, and many distinct ones stay
	// within the byte budget by evicting.
	for i := 0; i < 40; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/scans?limit=1&minrate=%d", ts.URL, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	small := ts.URL + "/v1/tables/tools"
	resp, err := http.Get(small)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(small)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "hit" {
		t.Fatalf("small body repeat: X-Cache = %q, want hit", c)
	}

	snap := reg.Snapshot()
	bytesGauge, ok := snap.Gauges["server.cache.bytes"]
	if !ok {
		t.Fatal("server.cache.bytes gauge not exposed")
	}
	if bytesGauge <= 0 || bytesGauge > maxBytes {
		t.Fatalf("cache bytes gauge %d outside (0, %d]", bytesGauge, maxBytes)
	}

	var stats struct {
		CacheBytes int64 `json:"cache_bytes"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.CacheBytes <= 0 || stats.CacheBytes > maxBytes {
		t.Fatalf("/v1/stats cache_bytes %d outside (0, %d]", stats.CacheBytes, maxBytes)
	}
}

// TestLRUByteAccounting unit-tests the byte bound directly: eviction by
// bytes with the entry count still roomy, and replacement accounting.
func TestLRUByteAccounting(t *testing.T) {
	c := newLRU(100, 1000) // per-entry cap 125
	if c.entryCap() != 125 {
		t.Fatalf("entryCap = %d, want 125", c.entryCap())
	}
	c.put("big", bytes.Repeat([]byte("x"), 126))
	if _, ok := c.get("big"); ok {
		t.Fatal("body above the per-entry cap was stored")
	}
	for i := 0; i < 20; i++ {
		c.put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 100))
	}
	if got := c.bytesUsed(); got > 1000 {
		t.Fatalf("bytesUsed = %d, exceeds 1000 budget", got)
	}
	if c.len() != 10 {
		t.Fatalf("len = %d, want 10 (1000/100)", c.len())
	}
	if _, ok := c.get("k19"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry survived byte-bound eviction")
	}
	// Replacement: same key, new body size adjusts the tally, not doubles it.
	c.put("k19", bytes.Repeat([]byte("y"), 50))
	want := c.bytesUsed()
	c.put("k19", bytes.Repeat([]byte("z"), 50))
	if got := c.bytesUsed(); got != want {
		t.Fatalf("replacement changed bytesUsed %d -> %d", want, got)
	}
}

// TestConcurrentCacheRescanCompaction races queries against segment
// discovery and compaction generation bumps — the -race companion to
// TestSegmentStoreServing. Every response must be internally consistent
// (one of the segment-set counts that existed at some point, never a torn
// or stale-beyond-generation body), and the final state must converge.
func TestConcurrentCacheRescanCompaction(t *testing.T) {
	dir := t.TempDir()
	sw, err := archive.OpenSegmentDir(dir, archive.SegmentConfig{TelescopeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for _, sc := range storeScans(0, 100) {
		if err := sw.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cat, err := archive.OpenCatalog(dir, archive.CatalogConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	srv := newServer(nil, nil, []string{dir}, []*archive.Catalog{cat}, serverConfig{cacheEntries: 32}, reg)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Writer: seal 4 more 50-scan segments, refreshing after each, then
	// compact runs and refresh again — generation bumps racing the readers.
	writerDone := make(chan error, 1)
	go func() {
		for batch := 0; batch < 4; batch++ {
			for _, sc := range storeScans(100+batch*50, 50) {
				if err := sw.Add(sc); err != nil {
					writerDone <- err
					return
				}
			}
			if err := sw.Seal(); err != nil {
				writerDone <- err
				return
			}
			if _, err := cat.Refresh(); err != nil {
				writerDone <- err
				return
			}
		}
		comp := archive.NewCompactor(sw, archive.CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30})
		if _, err := comp.CompactOnce(); err != nil {
			writerDone <- err
			return
		}
		if _, err := cat.Refresh(); err != nil {
			writerDone <- err
			return
		}
		writerDone <- nil
	}()

	// Readers: hammer the same cached query (and a couple of variants)
	// while the segment set churns underneath.
	valid := map[uint64]bool{100: true, 150: true, 200: true, 250: true, 300: true}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/scans?limit=%d", ts.URL, 1+g%3)
			for i := 0; i < 40; i++ {
				resp, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				var res struct {
					Matched uint64 `json:"matched"`
				}
				err = json.NewDecoder(resp.Body).Decode(&res)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if !valid[res.Matched] {
					errc <- fmt.Errorf("matched=%d is no segment-set total", res.Matched)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	// Converged: the final generation serves all 300 scans, and caches it.
	var res struct {
		Matched uint64 `json:"matched"`
	}
	if c := getCache(t, ts.URL+"/v1/scans?limit=1", &res); res.Matched != 300 {
		t.Fatalf("final matched=%d (cache=%s), want 300", res.Matched, c)
	}
	if c := getCache(t, ts.URL+"/v1/scans?limit=1", &res); c != "hit" || res.Matched != 300 {
		t.Fatalf("final repeat cache=%s matched=%d, want hit/300", c, res.Matched)
	}
}
