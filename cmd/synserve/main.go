// Command synserve serves campaign archives over HTTP. It loads one or more
// archive files written by synalyze -archive or syneval -archive-out and
// exposes their scans through a small JSON API:
//
//	GET /v1/scans?year=2022&tool=zmap&port=443&limit=100
//	GET /v1/tables/ports?year=2022&top=10
//	GET /v1/tables/tools?qualified=true
//	GET /v1/tables/origins?year=2024
//	GET /v1/stats
//
// Filter parameters (year, tool, port, src, minrate, maxrate, qualified)
// are shared by every query endpoint; year/tool/port accept repeated or
// comma-separated values. Zone-map pruning applies per query, and results
// are cached in an LRU keyed on the canonicalized query string. SIGINT or
// SIGTERM drains in-flight requests before exiting.
//
// Archives are opened skip-corrupt by default (-skip-corrupt=false to fail
// fast instead): checksum-failed blocks are skipped and counted, and every
// query response carries "degraded": true once any block was lost. -timeout
// bounds each query; an expired deadline returns 504 with a JSON error
// body.
//
// Usage:
//
//	syneval -archive-out decade.syna
//	synserve -addr localhost:8080 decade.syna
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synserve: ")

	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 1, "block-decode workers per query; >1 decompresses surviving blocks in parallel")
	cacheSize := flag.Int("cache", 128, "result-cache capacity in responses (0 disables caching)")
	queryTimeout := flag.Duration("timeout", 30*time.Second, "per-query deadline; expired queries return 504 (0 = no deadline)")
	skipCorrupt := flag.Bool("skip-corrupt", true, "skip checksum-failed archive blocks instead of failing the query; responses carry degraded=true")
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *cacheSize < 0 {
		log.Fatalf("-cache must be at least 0, got %d", *cacheSize)
	}
	if flag.NArg() < 1 {
		log.Fatal("usage: synserve [flags] archive.syna [more.syna...]")
	}
	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}

	// The registry is always live here: /v1/stats exposes it.
	reg := obs.NewRegistry()
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()

	var opts []archive.ReaderOption
	if *skipCorrupt {
		opts = append(opts, archive.WithSkipCorrupt())
	}
	paths := flag.Args()
	readers := make([]*archive.Reader, 0, len(paths))
	for _, path := range paths {
		rd, err := archive.Open(path, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer rd.Close()
		rd.SetWorkers(*workers)
		rd.SetMetrics(reg)
		log.Printf("loaded %s: %d blocks, %d scans, telescope %d, origins=%v",
			path, rd.NumBlocks(), rd.NumScans(), rd.TelescopeSize(), rd.HasOrigins())
		readers = append(readers, rd)
	}

	srv := newServer(paths, readers, *cacheSize, *queryTimeout, reg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", ln.Addr())
	if err := serve(ctx, ln, srv.handler()); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// shutdownTimeout bounds the in-flight request drain after a signal.
const shutdownTimeout = 10 * time.Second

// serve runs an HTTP server on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up to
// shutdownTimeout to finish.
func serve(ctx context.Context, ln net.Listener, h http.Handler) error {
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
