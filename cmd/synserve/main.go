// Command synserve serves campaign archives over HTTP. It loads archive
// files written by synalyze -archive or syneval -archive-out, and/or live
// segment store directories written by syningest, and exposes their scans
// through a small JSON API:
//
//	GET /v1/scans?year=2022&tool=zmap&port=443&limit=100
//	GET /v1/tables/ports?year=2022&top=10
//	GET /v1/tables/tools?qualified=true
//	GET /v1/tables/origins?year=2024
//	GET /v1/stats
//
// Filter parameters (year, tool, port, src, minrate, maxrate, qualified)
// are shared by every query endpoint; year/tool/port accept repeated or
// comma-separated values. Zone-map pruning applies per query, and results
// are cached in a byte-bounded LRU (-cache-bytes) keyed on the
// canonicalized query string. SIGINT or SIGTERM drains: new requests get
// 503 + Retry-After while in-flight ones finish.
//
// The server is hardened for concurrent fleets: identical cache-missing
// queries collapse into one execution (singleflight), at most -max-inflight
// scans run at once with the excess fast-failed as 429 + Retry-After, and
// scan lists longer than -stream-above rows stream as chunked JSON instead
// of buffering. Each behaviour is observable via server.* counters and
// gauges at /v1/stats; cmd/synload is the matching load harness.
//
// Archives are opened skip-corrupt by default (-skip-corrupt=false to fail
// fast instead): checksum-failed blocks are skipped and counted, and every
// query response carries "degraded": true once any block was lost. -timeout
// bounds each query; an expired deadline returns 504 with a JSON error
// body.
//
// A directory argument is served as a live segment store: its manifest is
// re-read every -rescan interval, so segments sealed by a concurrently
// running syningest (and compactions merging them) become queryable without
// a restart. Result-cache entries are keyed on the store generation and
// invalidate automatically when the segment set changes; degraded responses
// are never cached.
//
// Usage:
//
//	syneval -archive-out decade.syna
//	synserve -addr localhost:8080 decade.syna
//
//	syningest -dir store/ -follow spool.synl &
//	synserve -addr localhost:8080 -rescan 2s store/
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synserve: ")

	addr := flag.String("addr", "localhost:8080", "listen address")
	workers := flag.Int("workers", 1, "block-decode workers per query; >1 decompresses surviving blocks in parallel")
	cacheSize := flag.Int("cache", 128, "result-cache capacity in responses (0 disables caching)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache capacity in body bytes (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 2*runtime.GOMAXPROCS(0), "max concurrently executing archive scans; excess requests get 429 + Retry-After (0 = unbounded)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
	streamAbove := flag.Int("stream-above", defaultStreamAbove, "stream scan-list responses longer than this many scans as chunked JSON (-1 = never stream)")
	queryTimeout := flag.Duration("timeout", 30*time.Second, "per-query deadline; expired queries return 504 (0 = no deadline)")
	skipCorrupt := flag.Bool("skip-corrupt", true, "skip checksum-failed archive blocks instead of failing the query; responses carry degraded=true")
	rescan := flag.Duration("rescan", 2*time.Second, "poll interval for discovering newly sealed segments in store directories (0 = only at startup)")
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *cacheSize < 0 {
		log.Fatalf("-cache must be at least 0, got %d", *cacheSize)
	}
	if flag.NArg() < 1 {
		log.Fatal("usage: synserve [flags] archive.syna|storedir [more...]")
	}
	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}

	// The registry is always live here: /v1/stats exposes it.
	reg := obs.NewRegistry()
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()

	var opts []archive.ReaderOption
	if *skipCorrupt {
		opts = append(opts, archive.WithSkipCorrupt())
	}
	var paths, dirs []string
	var readers []*archive.Reader
	var catalogs []*archive.Catalog
	for _, arg := range flag.Args() {
		if fi, err := os.Stat(arg); err == nil && fi.IsDir() {
			cat, err := archive.OpenCatalog(arg, archive.CatalogConfig{
				SkipCorrupt: *skipCorrupt, Workers: *workers, Metrics: reg,
			})
			if err != nil {
				log.Fatal(err)
			}
			defer cat.Close()
			v := cat.View()
			log.Printf("opened store %s: %d segments, %d scans, generation %d",
				arg, v.Len(), v.NumScans(), v.Generation())
			v.Release()
			dirs = append(dirs, arg)
			catalogs = append(catalogs, cat)
			continue
		}
		rd, err := archive.Open(arg, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer rd.Close()
		rd.SetWorkers(*workers)
		rd.SetMetrics(reg)
		log.Printf("loaded %s: %d blocks, %d scans, telescope %d, origins=%v",
			arg, rd.NumBlocks(), rd.NumScans(), rd.TelescopeSize(), rd.HasOrigins())
		paths = append(paths, arg)
		readers = append(readers, rd)
	}

	srv := newServer(paths, readers, dirs, catalogs, serverConfig{
		cacheEntries: *cacheSize,
		cacheBytes:   *cacheBytes,
		timeout:      *queryTimeout,
		maxInflight:  *maxInflight,
		retryAfter:   *retryAfter,
		streamAbove:  *streamAbove,
	}, reg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(catalogs) > 0 && *rescan > 0 {
		go rescanLoop(ctx, dirs, catalogs, *rescan)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", ln.Addr())
	if err := serve(ctx, ln, srv); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// rescanLoop polls every store's manifest until ctx is done, logging
// discoveries. Refresh failures (a manifest swap caught mid-read never
// happens — the write is atomic — but a permission or I/O error can) are
// logged and retried next tick; the last good segment set keeps serving.
func rescanLoop(ctx context.Context, dirs []string, catalogs []*archive.Catalog, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for i, cat := range catalogs {
				changed, err := cat.Refresh()
				if err != nil {
					log.Printf("rescan %s: %v", dirs[i], err)
					continue
				}
				if changed {
					v := cat.View()
					log.Printf("store %s: now %d segments, %d scans, generation %d",
						dirs[i], v.Len(), v.NumScans(), v.Generation())
					v.Release()
				}
			}
		}
	}
}

// shutdownTimeout bounds the in-flight request drain after a signal.
const shutdownTimeout = 10 * time.Second

// serve runs srv on ln until ctx is canceled, then drains gracefully: the
// server stops admitting (new requests get 503 + Connection: close, so
// keep-alive clients move off), the listener closes, and in-flight requests
// get up to shutdownTimeout to finish before the process exits 0.
func serve(ctx context.Context, ln net.Listener, srv *server) error {
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	srv.startDrain()
	hs.SetKeepAlivesEnabled(false)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
