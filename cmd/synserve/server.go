package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/tools"
)

// server answers queries over campaign archives: static sealed files and/or
// live segment stores (directories written by syningest, polled for newly
// sealed segments). /v1/scans and /v1/tables/* responses are cached in an LRU
// keyed on the canonicalized query prefixed with the stores' catalog
// generations, so a repeated dashboard refresh hits memory instead of the
// decompressor and cached bodies die with the segment set they were computed
// from; /v1/stats is always computed live (it exposes the moving metric
// counters, including the cache's own hit/miss tallies).
type server struct {
	paths    []string
	readers  []*archive.Reader
	dirs     []string
	catalogs []*archive.Catalog
	cache    *lruCache
	reg      *obs.Registry
	// timeout bounds each query's archive walk; 0 means no deadline. An
	// expired deadline surfaces as 504 with a JSON error body rather than a
	// half-written response, because the walk is aborted before rendering.
	timeout time.Duration

	mRequests, mErrors, mHits, mMisses *obs.Counter
	mLatency                           *obs.Histogram
}

func newServer(paths []string, readers []*archive.Reader, dirs []string, catalogs []*archive.Catalog, cacheSize int, timeout time.Duration, reg *obs.Registry) *server {
	return &server{
		paths:    paths,
		readers:  readers,
		dirs:     dirs,
		catalogs: catalogs,
		cache:    newLRU(cacheSize),
		reg:      reg,
		timeout:  timeout,

		mRequests: reg.Counter("synserve.http.requests"),
		mErrors:   reg.Counter("synserve.http.errors"),
		mHits:     reg.Counter("synserve.cache.hits"),
		mMisses:   reg.Counter("synserve.cache.misses"),
		mLatency:  reg.Histogram("synserve.http.latency_ns"),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scans", s.endpoint(s.handleScans, true))
	mux.HandleFunc("/v1/tables/ports", s.endpoint(s.handlePorts, true))
	mux.HandleFunc("/v1/tables/tools", s.endpoint(s.handleTools, true))
	mux.HandleFunc("/v1/tables/origins", s.endpoint(s.handleOrigins, true))
	mux.HandleFunc("/v1/stats", s.endpoint(s.handleStats, false))
	return mux
}

// httpError carries a status code through the handler's error return.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// canonicalKey renders a request URL with sorted query keys (and sorted
// values per key), so parameter order never fragments the cache.
func canonicalKey(u *url.URL) string {
	q := u.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(u.Path)
	sep := byte('?')
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			b.WriteByte(sep)
			sep = '&'
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

// endpoint wraps a query handler with method filtering, instrumentation,
// source acquisition, the per-query deadline, JSON rendering and (when
// cacheable) the LRU result cache.
func (s *server) endpoint(h func(ctx context.Context, src *sources, q url.Values) (any, error), cacheable bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(s.mLatency)
		defer sp.End()
		s.mRequests.Inc()
		if r.Method != http.MethodGet {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		src := s.acquire()
		defer src.release()
		var key string
		if cacheable {
			key = src.genToken() + canonicalKey(r.URL)
			if body, ok := s.cache.get(key); ok {
				s.mHits.Inc()
				writeJSON(w, body, "hit")
				return
			}
			s.mMisses.Inc()
		}
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		res, err := h(ctx, src, r.URL.Query())
		if err != nil {
			s.mErrors.Inc()
			code := http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				code = he.code
			} else if errors.Is(err, context.DeadlineExceeded) {
				code = http.StatusGatewayTimeout
			}
			writeJSONError(w, code, err.Error())
			return
		}
		body, err := json.Marshal(res)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		// A degraded body (corrupt blocks skipped, a segment unreadable) is
		// never cached: the damage may heal — or be discovered — without a
		// generation bump, and a cached incomplete result would outlive both.
		// The check runs after the handler so corruption found during this
		// very read already counts.
		if cacheable && !src.degraded() {
			s.cache.put(key, body)
		}
		writeJSON(w, body, "miss")
	}
}

func writeJSON(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Write(body)
}

// writeJSONError renders an error as {"error": ...} so API clients never
// have to sniff whether a failure body is text or JSON.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// toolNames maps lower-cased display names back to Tool values for the
// ?tool= parameter.
var toolNames = func() map[string]tools.Tool {
	m := map[string]tools.Tool{}
	for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		m[strings.ToLower(t.String())] = t
	}
	return m
}()

func knownToolNames() []string {
	names := make([]string, 0, len(toolNames))
	for n := range toolNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// splitList flattens repeated and comma-separated parameter values:
// ?year=2020&year=2021,2022 yields [2020 2021 2022].
func splitList(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// parseFilter maps the shared query parameters onto an archive.Filter:
// year, tool, port (each repeatable or comma-separated), src (CIDR),
// minrate/maxrate (pps), qualified (bool).
func parseFilter(q url.Values) (archive.Filter, error) {
	var f archive.Filter
	for _, v := range splitList(q["year"]) {
		y, err := strconv.Atoi(v)
		if err != nil {
			return f, badRequest("invalid year %q", v)
		}
		f.Years = append(f.Years, y)
	}
	for _, v := range splitList(q["tool"]) {
		t, ok := toolNames[strings.ToLower(v)]
		if !ok {
			return f, badRequest("unknown tool %q (want one of %s)", v, strings.Join(knownToolNames(), ", "))
		}
		f.Tools = append(f.Tools, t)
	}
	for _, v := range splitList(q["port"]) {
		p, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			return f, badRequest("invalid port %q", v)
		}
		f.Ports = append(f.Ports, uint16(p))
	}
	if v := q.Get("src"); v != "" {
		pfx, err := inetmodel.ParsePrefix(v)
		if err != nil {
			return f, badRequest("invalid src prefix %q: %v", v, err)
		}
		f.SrcPrefix = &pfx
	}
	var err error
	if v := q.Get("minrate"); v != "" {
		if f.MinRate, err = strconv.ParseFloat(v, 64); err != nil {
			return f, badRequest("invalid minrate %q", v)
		}
	}
	if v := q.Get("maxrate"); v != "" {
		if f.MaxRate, err = strconv.ParseFloat(v, 64); err != nil {
			return f, badRequest("invalid maxrate %q", v)
		}
	}
	if v := q.Get("qualified"); v != "" {
		if f.QualifiedOnly, err = strconv.ParseBool(v); err != nil {
			return f, badRequest("invalid qualified %q", v)
		}
	}
	return f, nil
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

type originJSON struct {
	Country string `json:"country"`
	ASN     uint32 `json:"asn"`
	Type    string `json:"type"`
	OrgName string `json:"org,omitempty"`
}

type scanJSON struct {
	Src          string      `json:"src"`
	StartNS      int64       `json:"start_ns"`
	EndNS        int64       `json:"end_ns"`
	Packets      uint64      `json:"packets"`
	DistinctDsts int         `json:"distinct_dsts"`
	Ports        []uint16    `json:"ports"`
	Tool         string      `json:"tool"`
	Qualified    bool        `json:"qualified"`
	RatePPS      float64     `json:"rate_pps"`
	Coverage     float64     `json:"coverage"`
	Origin       *originJSON `json:"origin,omitempty"`
}

// handleScans returns matching scans up to ?limit= (default 1000), with the
// total match count so clients can detect truncation.
func (s *server) handleScans(ctx context.Context, src *sources, q url.Values) (any, error) {
	f, err := parseFilter(q)
	if err != nil {
		return nil, err
	}
	limit := 1000
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			return nil, badRequest("invalid limit %q (want a positive integer)", v)
		}
	}
	scans := []scanJSON{}
	var matched uint64
	err = src.forEach(ctx, f, func(rd *archive.Reader, sc *core.Scan, o enrich.Origin) {
		matched++
		if len(scans) >= limit {
			return
		}
		sj := scanJSON{
			Src:          ipString(sc.Src),
			StartNS:      sc.Start,
			EndNS:        sc.End,
			Packets:      sc.Packets,
			DistinctDsts: sc.DistinctDsts,
			Ports:        sc.Ports,
			Tool:         sc.Tool.String(),
			Qualified:    sc.Qualified,
			RatePPS:      sc.RatePPS,
			Coverage:     sc.Coverage,
		}
		if rd.HasOrigins() {
			sj.Origin = &originJSON{
				Country: o.Country, ASN: o.ASN,
				Type: o.Type.String(), OrgName: o.OrgName,
			}
		}
		scans = append(scans, sj)
	})
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"matched":   matched,
		"returned":  len(scans),
		"truncated": uint64(len(scans)) < matched,
		"degraded":  src.degraded(),
		"scans":     scans,
	}, nil
}

type portRow struct {
	Port    uint16  `json:"port"`
	Scans   uint64  `json:"scans"`
	Packets uint64  `json:"packets"`
	Share   float64 `json:"share"`
}

// handlePorts ranks destination ports by the number of matching scans
// targeting them (?top=, default 10).
func (s *server) handlePorts(ctx context.Context, src *sources, q url.Values) (any, error) {
	f, err := parseFilter(q)
	if err != nil {
		return nil, err
	}
	top := 10
	if v := q.Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil || top < 1 {
			return nil, badRequest("invalid top %q (want a positive integer)", v)
		}
	}
	type agg struct{ scans, packets uint64 }
	byPort := map[uint16]*agg{}
	var total uint64
	err = src.forEach(ctx, f, func(_ *archive.Reader, sc *core.Scan, _ enrich.Origin) {
		total++
		for _, p := range sc.Ports {
			a := byPort[p]
			if a == nil {
				a = &agg{}
				byPort[p] = a
			}
			a.scans++
			a.packets += sc.Packets / uint64(len(sc.Ports))
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]portRow, 0, len(byPort))
	for p, a := range byPort {
		share := 0.0
		if total > 0 {
			share = float64(a.scans) / float64(total)
		}
		rows = append(rows, portRow{Port: p, Scans: a.scans, Packets: a.packets, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scans != rows[j].Scans {
			return rows[i].Scans > rows[j].Scans
		}
		return rows[i].Port < rows[j].Port
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	return map[string]any{"total_scans": total, "ports": rows, "degraded": src.degraded()}, nil
}

type toolRow struct {
	Tool      string  `json:"tool"`
	Scans     uint64  `json:"scans"`
	Qualified uint64  `json:"qualified"`
	Share     float64 `json:"share"`
}

// handleTools tallies matching scans per fingerprinted tool.
func (s *server) handleTools(ctx context.Context, src *sources, q url.Values) (any, error) {
	f, err := parseFilter(q)
	if err != nil {
		return nil, err
	}
	scans := make([]uint64, tools.NumTools())
	qualified := make([]uint64, tools.NumTools())
	var total uint64
	err = src.forEach(ctx, f, func(_ *archive.Reader, sc *core.Scan, _ enrich.Origin) {
		total++
		scans[sc.Tool]++
		if sc.Qualified {
			qualified[sc.Tool]++
		}
	})
	if err != nil {
		return nil, err
	}
	rows := []toolRow{}
	for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		if scans[t] == 0 {
			continue
		}
		rows = append(rows, toolRow{
			Tool: t.String(), Scans: scans[t], Qualified: qualified[t],
			Share: float64(scans[t]) / float64(total),
		})
	}
	return map[string]any{"total_scans": total, "tools": rows, "degraded": src.degraded()}, nil
}

type originRow struct {
	Type    string `json:"type"`
	Sources int    `json:"sources"`
	Scans   uint64 `json:"scans"`
	Packets uint64 `json:"packets"`
}

// handleOrigins breaks matching scans down by scanner type (Table 2 view).
// Only archives written with origins can serve it.
func (s *server) handleOrigins(ctx context.Context, src *sources, q url.Values) (any, error) {
	if !src.hasOrigins() {
		return nil, badRequest("no loaded archive carries origins (write one with syneval -archive-out)")
	}
	f, err := parseFilter(q)
	if err != nil {
		return nil, err
	}
	type agg struct {
		sources map[uint32]struct{}
		scans   uint64
		packets uint64
	}
	byType := map[inetmodel.ScannerType]*agg{}
	err = src.forEach(ctx, f, func(rd *archive.Reader, sc *core.Scan, o enrich.Origin) {
		if !rd.HasOrigins() {
			return
		}
		a := byType[o.Type]
		if a == nil {
			a = &agg{sources: map[uint32]struct{}{}}
			byType[o.Type] = a
		}
		a.sources[sc.Src] = struct{}{}
		a.scans++
		a.packets += sc.Packets
	})
	if err != nil {
		return nil, err
	}
	rows := []originRow{}
	for typ, a := range byType {
		rows = append(rows, originRow{
			Type: typ.String(), Sources: len(a.sources),
			Scans: a.scans, Packets: a.packets,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scans != rows[j].Scans {
			return rows[i].Scans > rows[j].Scans
		}
		return rows[i].Type < rows[j].Type
	})
	return map[string]any{"types": rows, "degraded": src.degraded()}, nil
}

type archiveInfo struct {
	Path          string `json:"path"`
	Blocks        int    `json:"blocks"`
	Scans         uint64 `json:"scans"`
	TelescopeSize int    `json:"telescope_size"`
	Origins       bool   `json:"origins"`
	// MinYear and MaxYear bound the archived scans' start years, from the
	// zone maps (the exact year set would need a decode).
	MinYear int `json:"min_year"`
	MaxYear int `json:"max_year"`
}

// storeInfo describes one live segment store in /v1/stats.
type storeInfo struct {
	Dir        string `json:"dir"`
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Scans      uint64 `json:"scans"`
	Unreadable int    `json:"unreadable"`
}

// handleStats reports the loaded archives, the live segment stores, and a
// metrics snapshot (request/error counts, cache hits/misses, blocks scanned
// vs pruned, segment discovery/compaction counters). Never cached: the
// counters move with every request.
func (s *server) handleStats(_ context.Context, src *sources, _ url.Values) (any, error) {
	infos := make([]archiveInfo, 0, len(s.readers))
	for i, rd := range s.readers {
		minY, maxY := 0, 0
		for _, z := range rd.Blocks() {
			if minY == 0 || int(z.MinYear) < minY {
				minY = int(z.MinYear)
			}
			if int(z.MaxYear) > maxY {
				maxY = int(z.MaxYear)
			}
		}
		infos = append(infos, archiveInfo{
			Path: s.paths[i], Blocks: rd.NumBlocks(), Scans: rd.NumScans(),
			TelescopeSize: rd.TelescopeSize(), Origins: rd.HasOrigins(),
			MinYear: minY, MaxYear: maxY,
		})
	}
	stores := make([]storeInfo, 0, len(src.views))
	for i, v := range src.views {
		stores = append(stores, storeInfo{
			Dir:        s.dirs[i],
			Generation: v.Generation(),
			Segments:   v.Len(),
			Scans:      v.NumScans(),
			Unreadable: v.Missing(),
		})
	}
	snap := s.reg.Snapshot()
	return map[string]any{
		"archives":      infos,
		"stores":        stores,
		"cache_entries": s.cache.len(),
		"degraded":      src.degraded(),
		"faults":        snap.CountersWithPrefix("faults."),
		"metrics":       snap,
	}, nil
}
