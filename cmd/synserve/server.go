package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/tools"
)

// serverConfig collects the serving-side tunables.
type serverConfig struct {
	// cacheEntries caps the result cache by response count (0 disables it).
	cacheEntries int
	// cacheBytes caps the result cache by total body bytes (0 = unbounded).
	cacheBytes int64
	// timeout bounds each query's archive walk; 0 means no deadline. An
	// expired deadline surfaces as 504 with a JSON error body rather than a
	// half-written response, because the walk is aborted before rendering.
	timeout time.Duration
	// maxInflight bounds concurrently executing archive scans; excess
	// cache-missing requests fast-fail 429 + Retry-After (0 = unbounded).
	maxInflight int
	// retryAfter is the hint sent with 429/503 responses.
	retryAfter time.Duration
	// streamAbove: select-mode responses with more scans than this are
	// written incrementally (chunked) instead of marshaled into one body;
	// negative disables streaming, 0 picks the default.
	streamAbove int
}

// defaultStreamAbove is the scan-list length past which responses stream.
const defaultStreamAbove = 4096

// server answers queries over campaign archives: static sealed files and/or
// live segment stores (directories written by syningest, polled for newly
// sealed segments). Every analytical endpoint — POST /v1/query and the
// deprecated fixed-parameter GET surfaces — compiles to one internal/query
// request and runs through the same streaming engine under zone-map pushdown,
// behind the same hardened execution path: result-cache lookup, singleflight
// deduplication of identical in-flight queries, and admission control that
// fast-fails 429 when too many scans are already running. Responses are
// cached in a byte-bounded LRU keyed on the canonicalized query prefixed
// with the stores' catalog generations, so any two spellings of the same
// request share one entry and cached bodies die with the segment set they
// were computed from; /v1/stats is always computed live (it exposes the
// moving metric counters, including the cache's own hit/miss tallies).
type server struct {
	paths    []string
	readers  []*archive.Reader
	dirs     []string
	catalogs []*archive.Catalog
	cache    *lruCache
	reg      *obs.Registry
	timeout  time.Duration

	flights     flightGroup
	adm         *admission
	streamAbove int
	// draining refuses new requests with 503 + Connection: close once
	// shutdown starts, so keep-alive clients move off while in-flight
	// requests finish.
	draining atomic.Bool
	// execHook, when set, runs in the flight leader after admission and
	// before the engine walk — a test seam for holding queries in flight.
	execHook func()

	mRequests, mErrors, mHits, mMisses *obs.Counter
	mLatency                           *obs.Histogram

	// Hardened-path metrics (the server.* family).
	mAdmitted, mRejected  *obs.Counter
	mSFLeaders, mSFShared *obs.Counter
	mStreamed             *obs.Counter
	mDrainRefused         *obs.Counter

	// Engine metrics, shared by every surface that compiles into a query.
	mQueryRequests, mQueryParseErrors *obs.Counter
	mQueryRows, mQueryPartials        *obs.Counter
	mQueryExec                        *obs.Histogram
}

func newServer(paths []string, readers []*archive.Reader, dirs []string, catalogs []*archive.Catalog, cfg serverConfig, reg *obs.Registry) *server {
	if cfg.streamAbove == 0 {
		cfg.streamAbove = defaultStreamAbove
	}
	s := &server{
		paths:    paths,
		readers:  readers,
		dirs:     dirs,
		catalogs: catalogs,
		cache:    newLRU(cfg.cacheEntries, cfg.cacheBytes),
		reg:      reg,
		timeout:  cfg.timeout,

		adm:         newAdmission(cfg.maxInflight, cfg.retryAfter),
		streamAbove: cfg.streamAbove,

		mRequests: reg.Counter("synserve.http.requests"),
		mErrors:   reg.Counter("synserve.http.errors"),
		mHits:     reg.Counter("synserve.cache.hits"),
		mMisses:   reg.Counter("synserve.cache.misses"),
		mLatency:  reg.Histogram("synserve.http.latency_ns"),

		mAdmitted:     reg.Counter("server.admission.admitted"),
		mRejected:     reg.Counter("server.admission.rejected"),
		mSFLeaders:    reg.Counter("server.singleflight.leaders"),
		mSFShared:     reg.Counter("server.singleflight.shared"),
		mStreamed:     reg.Counter("server.stream.responses"),
		mDrainRefused: reg.Counter("server.drain.refused"),

		mQueryRequests:    reg.Counter("query.requests"),
		mQueryParseErrors: reg.Counter("query.parse_errors"),
		mQueryRows:        reg.Counter("query.rows"),
		mQueryPartials:    reg.Counter("query.partials_merged"),
		mQueryExec:        reg.Histogram("query.exec_ns"),
	}
	reg.GaugeFunc("server.inflight", s.adm.inflight)
	reg.GaugeFunc("server.cache.bytes", s.cache.bytesUsed)
	reg.GaugeFunc("server.cache.entries", func() int64 { return int64(s.cache.len()) })
	return s
}

// startDrain flips the server into draining mode: every new request is
// refused with 503 + Retry-After while already-admitted work finishes.
func (s *server) startDrain() { s.draining.Store(true) }

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/scans", s.queryEndpoint("/v1/scans", compileScans))
	mux.HandleFunc("/v1/tables/ports", s.queryEndpoint("/v1/tables/ports", compilePorts))
	mux.HandleFunc("/v1/tables/tools", s.queryEndpoint("/v1/tables/tools", compileTools))
	mux.HandleFunc("/v1/tables/origins", s.queryEndpoint("/v1/tables/origins", compileOrigins))
	mux.HandleFunc("/v1/stats", s.endpoint(s.handleStats))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.mDrainRefused.Inc()
			w.Header().Set("Connection", "close")
			w.Header().Set("Retry-After", s.adm.retryAfterHeader())
			writeJSONError(w, http.StatusServiceUnavailable, "server draining")
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// httpError carries a status code through the handler's error return.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errOverloaded is the admission-control fast-fail: every slot is running a
// scan, so the request is bounced immediately with a retry hint rather than
// queued behind work that may never drain.
var errOverloaded = &httpError{
	code: http.StatusTooManyRequests,
	msg:  "server overloaded: too many in-flight scans, retry after the hinted interval",
}

// errCode maps a handler error onto an HTTP status: explicit httpErrors keep
// their code, engine client errors (malformed or over-cap queries) are 400s,
// an expired per-query deadline is a 504, anything else a 500.
func errCode(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	if query.IsClientError(err) {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// writeError renders err with its mapped status, attaching the Retry-After
// hint to backpressure statuses so well-behaved clients (the facade's
// retrying Client among them) know when to come back.
func (s *server) writeError(w http.ResponseWriter, err error) {
	code := errCode(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.adm.retryAfterHeader())
	}
	writeJSONError(w, code, err.Error())
}

// renderFunc shapes an engine result into one endpoint's response body.
// degraded is the flight's view of source health, captured after the walk.
type renderFunc func(res *query.Result, degraded bool) (any, error)

// queryEndpoint wraps a deprecated fixed-parameter GET endpoint whose
// parameters compile into an engine query: method filtering,
// instrumentation, compile → canonicalize → generation-keyed cache lookup →
// the shared hardened execution path → historical response rendering. The
// cache key is the canonicalized compiled query, not the raw URL, so every
// spelling of the same request (parameter order, comma vs repeated lists, a
// default spelled out) shares one entry — and shares its execution path
// (singleflight, admission, deadline) with POST /v1/query.
func (s *server) queryEndpoint(path string, compile compileFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(s.mLatency)
		defer sp.End()
		s.mRequests.Inc()
		s.mQueryRequests.Inc()
		if r.Method != http.MethodGet {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		src := s.acquire()
		defer src.release()
		q, render, err := compile(src, r.URL.Query())
		if err == nil {
			q = q.Canonicalize()
			err = q.Validate()
		}
		if err != nil {
			s.mErrors.Inc()
			s.mQueryParseErrors.Inc()
			writeJSONError(w, errCode(err), err.Error())
			return
		}
		key := src.genToken() + path + "?" + q.Key()
		s.execute(w, r, src, q, key, render)
	}
}

// execute drives one compiled, canonicalized query through the hardened
// path shared by every analytical endpoint:
//
//	cache lookup → singleflight join → admission control → engine run
//	under the per-query deadline → render (streamed for large scan lists)
//	→ cache fill.
//
// The flight leader runs the scan under a context detached from its own
// request (followers may outlive the leader's client) but canceled when the
// last attached request disconnects, so abandoned scans stop instead of
// running to completion.
func (s *server) execute(w http.ResponseWriter, r *http.Request, src *sources, q *query.Query, key string, render renderFunc) {
	if body, ok := s.cache.get(key); ok {
		s.mHits.Inc()
		writeJSON(w, body, "hit")
		return
	}
	s.mMisses.Inc()

	f, leader := s.flights.join(key)
	cacheState := "shared"
	if leader {
		cacheState = "miss"
		s.mSFLeaders.Inc()
		s.runFlight(r.Context(), src, q, key, f)
	} else {
		s.mSFShared.Inc()
		select {
		case <-f.done:
		case <-r.Context().Done():
			// The client is gone; detach (possibly canceling the flight if
			// we were the last waiter) and write nothing.
			f.leave()
			return
		}
	}
	if f.err != nil {
		s.mErrors.Inc()
		s.writeError(w, f.err)
		return
	}

	if q.SelectMode() && s.streamAbove >= 0 && len(f.res.Scans) > s.streamAbove {
		s.streamScans(w, key, f.res, f.degraded, cacheState)
		return
	}
	out, err := render(f.res, f.degraded)
	if err != nil {
		s.mErrors.Inc()
		s.writeError(w, err)
		return
	}
	body, err := json.Marshal(out)
	if err != nil {
		s.mErrors.Inc()
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	// A degraded body (corrupt blocks skipped, a segment unreadable) is
	// never cached: the damage may heal — or be discovered — without a
	// generation bump, and a cached incomplete result would outlive both.
	// The check runs after the engine walk so corruption found during this
	// very read already counts.
	if !f.degraded {
		s.cache.put(key, body)
	}
	writeJSON(w, body, cacheState)
}

// runFlight is the leader's half of execute: admission control, the engine
// run under the per-query deadline, and publishing the shared outcome.
func (s *server) runFlight(reqCtx context.Context, src *sources, q *query.Query, key string, f *flight) {
	if !s.adm.tryAcquire() {
		s.mRejected.Inc()
		s.flights.finish(key, f, nil, false, errOverloaded)
		return
	}
	defer s.adm.release()
	s.mAdmitted.Inc()

	// The flight context is detached from any single request but bounded by
	// the per-query deadline and by waiter interest: the watcher below makes
	// the leader's own disconnect count like a follower's, so a flight every
	// client abandoned cancels its scan.
	base := context.Background()
	var cancel context.CancelFunc
	ctx := base
	if s.timeout > 0 {
		ctx, cancel = context.WithTimeout(base, s.timeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	f.setCancel(cancel)
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-reqCtx.Done():
			f.leave()
		case <-watchDone:
		}
	}()
	defer close(watchDone)

	if s.execHook != nil {
		s.execHook()
	}
	res, err := src.runQuery(ctx, q)
	s.flights.finish(key, f, res, src.degraded(), err)
}

// streamFlushEvery is the record interval between chunked flushes of a
// streamed scan list; defaultStreamTeeCap bounds the cache-fill copy of a
// streamed body when the cache itself has no byte budget.
const (
	streamFlushEvery    = 512
	defaultStreamTeeCap = 8 << 20
)

// streamScans renders a large select-mode response incrementally: scans are
// encoded one by one straight into the response writer and flushed in
// chunks, so the server never materializes a second full copy of a huge
// body (the chunked transfer encoding replaces Content-Length). A tee
// buffer capped at the cache's per-entry bound still captures bodies small
// enough to cache; past the cap the tee stops buffering, making the
// per-request memory bound unconditional.
func (s *server) streamScans(w http.ResponseWriter, key string, res *query.Result, degraded bool, cacheState string) {
	s.mStreamed.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	capBytes := s.cache.entryCap()
	if capBytes == 0 && s.cache != nil {
		// Byte-unbounded cache: still bound the tee, so one huge streamed
		// body cannot hold a full copy in memory just to maybe cache it.
		capBytes = defaultStreamTeeCap
	}
	tee := newCapTee(w, capBytes)
	fmt.Fprintf(tee, `{"matched":%d,"returned":%d,"truncated":%t,"degraded":%t,"scans":[`,
		res.Matched, len(res.Scans), res.Truncated, degraded)
	fl, _ := w.(http.Flusher)
	for i, rec := range res.Scans {
		if i > 0 {
			tee.Write([]byte{','})
		}
		b, err := json.Marshal(toScanJSON(rec.Scan, rec.Origin))
		if err != nil {
			// Mid-stream, the status is already written; truncating the body
			// is the only honest failure mode (and Marshal of scanJSON
			// cannot actually fail).
			return
		}
		tee.Write(b)
		if fl != nil && (i+1)%streamFlushEvery == 0 {
			fl.Flush()
		}
	}
	tee.Write([]byte("]}\n"))
	if body, ok := tee.buffered(); ok && !degraded {
		s.cache.put(key, body)
	}
}

// capTee writes through to an underlying writer while buffering a copy, up
// to a byte cap; once the cap is exceeded the buffer is dropped and only the
// pass-through continues.
type capTee struct {
	w        interface{ Write([]byte) (int, error) }
	buf      []byte
	cap      int64
	overflow bool
}

func newCapTee(w interface{ Write([]byte) (int, error) }, capBytes int64) *capTee {
	t := &capTee{w: w, cap: capBytes}
	if capBytes <= 0 {
		t.overflow = true // no cache to feed; never buffer
	}
	return t
}

func (t *capTee) Write(p []byte) (int, error) {
	if !t.overflow {
		if int64(len(t.buf)+len(p)) > t.cap {
			t.overflow = true
			t.buf = nil
		} else {
			t.buf = append(t.buf, p...)
		}
	}
	return t.w.Write(p)
}

// buffered returns the complete teed body, or ok == false when the cap was
// exceeded.
func (t *capTee) buffered() ([]byte, bool) {
	if t.overflow {
		return nil, false
	}
	return t.buf, true
}

// endpoint wraps a live (uncached, engine-less) handler — /v1/stats — with
// method filtering, instrumentation, source acquisition, the per-query
// deadline and JSON rendering.
func (s *server) endpoint(h func(ctx context.Context, src *sources, q url.Values) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(s.mLatency)
		defer sp.End()
		s.mRequests.Inc()
		if r.Method != http.MethodGet {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		src := s.acquire()
		defer src.release()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		res, err := h(ctx, src, r.URL.Query())
		if err != nil {
			s.mErrors.Inc()
			s.writeError(w, err)
			return
		}
		body, err := json.Marshal(res)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		writeJSON(w, body, "miss")
	}
}

func writeJSON(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Write(body)
}

// writeJSONError renders an error as {"error": ...} so API clients never
// have to sniff whether a failure body is text or JSON.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// toolNames maps lower-cased display names back to Tool values for the
// ?tool= parameter.
var toolNames = func() map[string]tools.Tool {
	m := map[string]tools.Tool{}
	for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		m[strings.ToLower(t.String())] = t
	}
	return m
}()

func knownToolNames() []string {
	names := make([]string, 0, len(toolNames))
	for n := range toolNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// splitList flattens repeated and comma-separated parameter values:
// ?year=2020&year=2021,2022 yields [2020 2021 2022].
func splitList(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

type originJSON struct {
	Country string `json:"country"`
	ASN     uint32 `json:"asn"`
	Type    string `json:"type"`
	OrgName string `json:"org,omitempty"`
}

type scanJSON struct {
	Src          string      `json:"src"`
	StartNS      int64       `json:"start_ns"`
	EndNS        int64       `json:"end_ns"`
	Packets      uint64      `json:"packets"`
	DistinctDsts int         `json:"distinct_dsts"`
	Ports        []uint16    `json:"ports"`
	Tool         string      `json:"tool"`
	Qualified    bool        `json:"qualified"`
	RatePPS      float64     `json:"rate_pps"`
	Coverage     float64     `json:"coverage"`
	TwoPhase     bool        `json:"two_phase,omitempty"`
	ISN          string      `json:"isn,omitempty"`
	LinkedDsts   int         `json:"linked_dsts,omitempty"`
	HandshakePkt uint64      `json:"handshake_packets,omitempty"`
	PayloadBytes uint64      `json:"payload_bytes,omitempty"`
	Origin       *originJSON `json:"origin,omitempty"`
}

type portRow struct {
	Port    uint16  `json:"port"`
	Scans   uint64  `json:"scans"`
	Packets uint64  `json:"packets"`
	Share   float64 `json:"share"`
}

type toolRow struct {
	Tool      string  `json:"tool"`
	Scans     uint64  `json:"scans"`
	Qualified uint64  `json:"qualified"`
	Share     float64 `json:"share"`
}

type originRow struct {
	Type    string `json:"type"`
	Sources int    `json:"sources"`
	Scans   uint64 `json:"scans"`
	Packets uint64 `json:"packets"`
}

type archiveInfo struct {
	Path          string `json:"path"`
	Blocks        int    `json:"blocks"`
	Scans         uint64 `json:"scans"`
	TelescopeSize int    `json:"telescope_size"`
	Origins       bool   `json:"origins"`
	// MinYear and MaxYear bound the archived scans' start years, from the
	// zone maps (the exact year set would need a decode).
	MinYear int `json:"min_year"`
	MaxYear int `json:"max_year"`
}

// storeInfo describes one live segment store in /v1/stats.
type storeInfo struct {
	Dir        string `json:"dir"`
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Scans      uint64 `json:"scans"`
	Unreadable int    `json:"unreadable"`
}

// handleStats reports the loaded archives, the live segment stores, and a
// metrics snapshot (request/error counts, cache hits/misses, blocks scanned
// vs pruned, segment discovery/compaction counters, the server.* hardening
// family). Never cached: the counters move with every request.
func (s *server) handleStats(_ context.Context, src *sources, _ url.Values) (any, error) {
	infos := make([]archiveInfo, 0, len(s.readers))
	for i, rd := range s.readers {
		minY, maxY := 0, 0
		for _, z := range rd.Blocks() {
			if minY == 0 || int(z.MinYear) < minY {
				minY = int(z.MinYear)
			}
			if int(z.MaxYear) > maxY {
				maxY = int(z.MaxYear)
			}
		}
		infos = append(infos, archiveInfo{
			Path: s.paths[i], Blocks: rd.NumBlocks(), Scans: rd.NumScans(),
			TelescopeSize: rd.TelescopeSize(), Origins: rd.HasOrigins(),
			MinYear: minY, MaxYear: maxY,
		})
	}
	stores := make([]storeInfo, 0, len(src.views))
	for i, v := range src.views {
		stores = append(stores, storeInfo{
			Dir:        s.dirs[i],
			Generation: v.Generation(),
			Segments:   v.Len(),
			Scans:      v.NumScans(),
			Unreadable: v.Missing(),
		})
	}
	snap := s.reg.Snapshot()
	return map[string]any{
		"archives":      infos,
		"stores":        stores,
		"cache_entries": s.cache.len(),
		"cache_bytes":   s.cache.bytesUsed(),
		"inflight":      s.adm.inflight(),
		"degraded":      src.degraded(),
		"faults":        snap.CountersWithPrefix("faults."),
		"metrics":       snap,
	}, nil
}
