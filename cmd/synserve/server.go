package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/tools"
)

// server answers queries over campaign archives: static sealed files and/or
// live segment stores (directories written by syningest, polled for newly
// sealed segments). Every analytical endpoint — POST /v1/query and the
// deprecated fixed-parameter GET surfaces — compiles to one internal/query
// request and runs through the same streaming engine under zone-map pushdown.
// Responses are cached in an LRU keyed on the canonicalized query prefixed
// with the stores' catalog generations, so any two spellings of the same
// request share one entry and cached bodies die with the segment set they
// were computed from; /v1/stats is always computed live (it exposes the
// moving metric counters, including the cache's own hit/miss tallies).
type server struct {
	paths    []string
	readers  []*archive.Reader
	dirs     []string
	catalogs []*archive.Catalog
	cache    *lruCache
	reg      *obs.Registry
	// timeout bounds each query's archive walk; 0 means no deadline. An
	// expired deadline surfaces as 504 with a JSON error body rather than a
	// half-written response, because the walk is aborted before rendering.
	timeout time.Duration

	mRequests, mErrors, mHits, mMisses *obs.Counter
	mLatency                           *obs.Histogram

	// Engine metrics, shared by every surface that compiles into a query.
	mQueryRequests, mQueryParseErrors *obs.Counter
	mQueryRows, mQueryPartials        *obs.Counter
	mQueryExec                        *obs.Histogram
}

func newServer(paths []string, readers []*archive.Reader, dirs []string, catalogs []*archive.Catalog, cacheSize int, timeout time.Duration, reg *obs.Registry) *server {
	return &server{
		paths:    paths,
		readers:  readers,
		dirs:     dirs,
		catalogs: catalogs,
		cache:    newLRU(cacheSize),
		reg:      reg,
		timeout:  timeout,

		mRequests: reg.Counter("synserve.http.requests"),
		mErrors:   reg.Counter("synserve.http.errors"),
		mHits:     reg.Counter("synserve.cache.hits"),
		mMisses:   reg.Counter("synserve.cache.misses"),
		mLatency:  reg.Histogram("synserve.http.latency_ns"),

		mQueryRequests:    reg.Counter("query.requests"),
		mQueryParseErrors: reg.Counter("query.parse_errors"),
		mQueryRows:        reg.Counter("query.rows"),
		mQueryPartials:    reg.Counter("query.partials_merged"),
		mQueryExec:        reg.Histogram("query.exec_ns"),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/scans", s.queryEndpoint("/v1/scans", compileScans))
	mux.HandleFunc("/v1/tables/ports", s.queryEndpoint("/v1/tables/ports", compilePorts))
	mux.HandleFunc("/v1/tables/tools", s.queryEndpoint("/v1/tables/tools", compileTools))
	mux.HandleFunc("/v1/tables/origins", s.queryEndpoint("/v1/tables/origins", compileOrigins))
	mux.HandleFunc("/v1/stats", s.endpoint(s.handleStats))
	return mux
}

// httpError carries a status code through the handler's error return.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errCode maps a handler error onto an HTTP status: explicit httpErrors keep
// their code, engine client errors (malformed or over-cap queries) are 400s,
// an expired per-query deadline is a 504, anything else a 500.
func errCode(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.code
	}
	if query.IsClientError(err) {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// queryEndpoint wraps a deprecated fixed-parameter GET endpoint whose
// parameters compile into an engine query: method filtering,
// instrumentation, compile → canonicalize → generation-keyed cache lookup →
// engine run under the per-query deadline → historical response rendering.
// The cache key is the canonicalized compiled query, not the raw URL, so
// every spelling of the same request (parameter order, comma vs repeated
// lists, a default spelled out) shares one entry — and shares its execution
// path with POST /v1/query.
func (s *server) queryEndpoint(path string, compile compileFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(s.mLatency)
		defer sp.End()
		s.mRequests.Inc()
		s.mQueryRequests.Inc()
		if r.Method != http.MethodGet {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		src := s.acquire()
		defer src.release()
		q, render, err := compile(src, r.URL.Query())
		if err == nil {
			q = q.Canonicalize()
			err = q.Validate()
		}
		if err != nil {
			s.mErrors.Inc()
			s.mQueryParseErrors.Inc()
			writeJSONError(w, errCode(err), err.Error())
			return
		}
		key := src.genToken() + path + "?" + q.Key()
		if body, ok := s.cache.get(key); ok {
			s.mHits.Inc()
			writeJSON(w, body, "hit")
			return
		}
		s.mMisses.Inc()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		res, err := src.runQuery(ctx, q)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, errCode(err), err.Error())
			return
		}
		out, err := render(res)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, errCode(err), err.Error())
			return
		}
		body, err := json.Marshal(out)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		// A degraded body (corrupt blocks skipped, a segment unreadable) is
		// never cached: the damage may heal — or be discovered — without a
		// generation bump, and a cached incomplete result would outlive both.
		// The check runs after the engine walk so corruption found during
		// this very read already counts.
		if !src.degraded() {
			s.cache.put(key, body)
		}
		writeJSON(w, body, "miss")
	}
}

// endpoint wraps a live (uncached, engine-less) handler — /v1/stats — with
// method filtering, instrumentation, source acquisition, the per-query
// deadline and JSON rendering.
func (s *server) endpoint(h func(ctx context.Context, src *sources, q url.Values) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.StartSpan(s.mLatency)
		defer sp.End()
		s.mRequests.Inc()
		if r.Method != http.MethodGet {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		src := s.acquire()
		defer src.release()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		res, err := h(ctx, src, r.URL.Query())
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, errCode(err), err.Error())
			return
		}
		body, err := json.Marshal(res)
		if err != nil {
			s.mErrors.Inc()
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		body = append(body, '\n')
		writeJSON(w, body, "miss")
	}
}

func writeJSON(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Write(body)
}

// writeJSONError renders an error as {"error": ...} so API clients never
// have to sniff whether a failure body is text or JSON.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// toolNames maps lower-cased display names back to Tool values for the
// ?tool= parameter.
var toolNames = func() map[string]tools.Tool {
	m := map[string]tools.Tool{}
	for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		m[strings.ToLower(t.String())] = t
	}
	return m
}()

func knownToolNames() []string {
	names := make([]string, 0, len(toolNames))
	for n := range toolNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// splitList flattens repeated and comma-separated parameter values:
// ?year=2020&year=2021,2022 yields [2020 2021 2022].
func splitList(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

type originJSON struct {
	Country string `json:"country"`
	ASN     uint32 `json:"asn"`
	Type    string `json:"type"`
	OrgName string `json:"org,omitempty"`
}

type scanJSON struct {
	Src          string      `json:"src"`
	StartNS      int64       `json:"start_ns"`
	EndNS        int64       `json:"end_ns"`
	Packets      uint64      `json:"packets"`
	DistinctDsts int         `json:"distinct_dsts"`
	Ports        []uint16    `json:"ports"`
	Tool         string      `json:"tool"`
	Qualified    bool        `json:"qualified"`
	RatePPS      float64     `json:"rate_pps"`
	Coverage     float64     `json:"coverage"`
	TwoPhase     bool        `json:"two_phase,omitempty"`
	ISN          string      `json:"isn,omitempty"`
	LinkedDsts   int         `json:"linked_dsts,omitempty"`
	HandshakePkt uint64      `json:"handshake_packets,omitempty"`
	PayloadBytes uint64      `json:"payload_bytes,omitempty"`
	Origin       *originJSON `json:"origin,omitempty"`
}

type portRow struct {
	Port    uint16  `json:"port"`
	Scans   uint64  `json:"scans"`
	Packets uint64  `json:"packets"`
	Share   float64 `json:"share"`
}

type toolRow struct {
	Tool      string  `json:"tool"`
	Scans     uint64  `json:"scans"`
	Qualified uint64  `json:"qualified"`
	Share     float64 `json:"share"`
}

type originRow struct {
	Type    string `json:"type"`
	Sources int    `json:"sources"`
	Scans   uint64 `json:"scans"`
	Packets uint64 `json:"packets"`
}

type archiveInfo struct {
	Path          string `json:"path"`
	Blocks        int    `json:"blocks"`
	Scans         uint64 `json:"scans"`
	TelescopeSize int    `json:"telescope_size"`
	Origins       bool   `json:"origins"`
	// MinYear and MaxYear bound the archived scans' start years, from the
	// zone maps (the exact year set would need a decode).
	MinYear int `json:"min_year"`
	MaxYear int `json:"max_year"`
}

// storeInfo describes one live segment store in /v1/stats.
type storeInfo struct {
	Dir        string `json:"dir"`
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Scans      uint64 `json:"scans"`
	Unreadable int    `json:"unreadable"`
}

// handleStats reports the loaded archives, the live segment stores, and a
// metrics snapshot (request/error counts, cache hits/misses, blocks scanned
// vs pruned, segment discovery/compaction counters). Never cached: the
// counters move with every request.
func (s *server) handleStats(_ context.Context, src *sources, _ url.Values) (any, error) {
	infos := make([]archiveInfo, 0, len(s.readers))
	for i, rd := range s.readers {
		minY, maxY := 0, 0
		for _, z := range rd.Blocks() {
			if minY == 0 || int(z.MinYear) < minY {
				minY = int(z.MinYear)
			}
			if int(z.MaxYear) > maxY {
				maxY = int(z.MaxYear)
			}
		}
		infos = append(infos, archiveInfo{
			Path: s.paths[i], Blocks: rd.NumBlocks(), Scans: rd.NumScans(),
			TelescopeSize: rd.TelescopeSize(), Origins: rd.HasOrigins(),
			MinYear: minY, MaxYear: maxY,
		})
	}
	stores := make([]storeInfo, 0, len(src.views))
	for i, v := range src.views {
		stores = append(stores, storeInfo{
			Dir:        s.dirs[i],
			Generation: v.Generation(),
			Segments:   v.Len(),
			Scans:      v.NumScans(),
			Unreadable: v.Missing(),
		})
	}
	snap := s.reg.Snapshot()
	return map[string]any{
		"archives":      infos,
		"stores":        stores,
		"cache_entries": s.cache.len(),
		"degraded":      src.degraded(),
		"faults":        snap.CountersWithPrefix("faults."),
		"metrics":       snap,
	}, nil
}
