package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"testing"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

func postQuery(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestQueryEndpointAggregates(t *testing.T) {
	ts, _, n := testServer(t, true)

	resp, body := postQuery(t, ts.URL, `{
		"group_by": ["tool"],
		"aggs": [{"op": "count"}, {"op": "count_distinct", "field": "src"}],
		"order_by": "key"
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Matched   uint64 `json:"matched"`
		TotalRows int    `json:"total_rows"`
		Rows      []struct {
			Key []struct {
				Field string `json:"field"`
				Str   string `json:"str"`
			} `json:"key"`
			Aggs []struct {
				Count uint64 `json:"count"`
			} `json:"aggs"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if res.Matched != uint64(n) {
		t.Fatalf("matched %d, want %d", res.Matched, n)
	}
	if res.TotalRows != 3 || len(res.Rows) != 3 {
		t.Fatalf("rows %d/%d, want 3 (archive has 3 tools)", len(res.Rows), res.TotalRows)
	}
	var count uint64
	for _, r := range res.Rows {
		count += r.Aggs[0].Count
		if r.Key[0].Field != "tool" || r.Key[0].Str == "" {
			t.Fatalf("bad key %+v", r.Key)
		}
		if r.Aggs[1].Count == 0 {
			t.Fatal("count_distinct src is zero")
		}
	}
	if count != uint64(n) {
		t.Fatalf("per-tool counts sum to %d, want %d", count, n)
	}
}

func TestQueryEndpointSelect(t *testing.T) {
	ts, _, _ := testServer(t, true)

	// The same filter through both surfaces must return the same scan list.
	resp, postBody := postQuery(t, ts.URL, `{
		"where": {"and": [
			{"field": "year", "eq": 2020},
			{"field": "tool", "eq": "ZMap"}
		]},
		"limit": 40
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, postBody)
	}
	var got, want struct {
		Matched   uint64     `json:"matched"`
		Returned  int        `json:"returned"`
		Truncated bool       `json:"truncated"`
		Scans     []scanJSON `json:"scans"`
	}
	if err := json.Unmarshal(postBody, &got); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/scans?year=2020&tool=zmap&limit=40", &want)
	if got.Matched != want.Matched || got.Returned != want.Returned || got.Truncated != want.Truncated {
		t.Fatalf("surfaces disagree: POST %d/%d/%v, GET %d/%d/%v",
			got.Matched, got.Returned, got.Truncated, want.Matched, want.Returned, want.Truncated)
	}
	for i := range got.Scans {
		gj, _ := json.Marshal(got.Scans[i])
		wj, _ := json.Marshal(want.Scans[i])
		if !bytes.Equal(gj, wj) {
			t.Fatalf("scan %d differs: %s vs %s", i, gj, wj)
		}
	}
}

// TestLegacyTablesParity recomputes the ports and tools tables with the
// pre-engine hand-rolled loops over the raw archive and requires the
// engine-backed endpoints to return byte-identical JSON.
func TestLegacyTablesParity(t *testing.T) {
	path, _ := testArchive(t, true)
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })

	var scans []*core.Scan
	var origins []enrich.Origin
	if err := rd.Scans(archive.Filter{}, func(sc *core.Scan, o enrich.Origin) {
		scans = append(scans, sc)
		origins = append(origins, o)
	}); err != nil {
		t.Fatal(err)
	}

	// Reference ports table: scans and split packets per port, share of all
	// scans, ranked by scans desc / port asc, top 5.
	type pagg struct{ scans, packets uint64 }
	byPort := map[uint16]*pagg{}
	for _, sc := range scans {
		for _, p := range sc.Ports {
			a := byPort[p]
			if a == nil {
				a = &pagg{}
				byPort[p] = a
			}
			a.scans++
			a.packets += sc.Packets / uint64(len(sc.Ports))
		}
	}
	total := uint64(len(scans))
	wantPorts := make([]portRow, 0, len(byPort))
	for p, a := range byPort {
		wantPorts = append(wantPorts, portRow{
			Port: p, Scans: a.scans, Packets: a.packets,
			Share: float64(a.scans) / float64(total),
		})
	}
	sort.Slice(wantPorts, func(i, j int) bool {
		if wantPorts[i].Scans != wantPorts[j].Scans {
			return wantPorts[i].Scans > wantPorts[j].Scans
		}
		return wantPorts[i].Port < wantPorts[j].Port
	})
	wantPorts = wantPorts[:5]
	wantPortsJSON, _ := json.Marshal(map[string]any{
		"total_scans": total, "ports": wantPorts, "degraded": false,
	})

	// Reference tools table: canonical display order, zero rows skipped.
	scansPer := make([]uint64, tools.NumTools())
	qualPer := make([]uint64, tools.NumTools())
	for _, sc := range scans {
		scansPer[sc.Tool]++
		if sc.Qualified {
			qualPer[sc.Tool]++
		}
	}
	wantTools := []toolRow{}
	for _, tl := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		if scansPer[tl] == 0 {
			continue
		}
		wantTools = append(wantTools, toolRow{
			Tool: tl.String(), Scans: scansPer[tl], Qualified: qualPer[tl],
			Share: float64(scansPer[tl]) / float64(total),
		})
	}
	wantToolsJSON, _ := json.Marshal(map[string]any{
		"total_scans": total, "tools": wantTools, "degraded": false,
	})

	// Reference origins table: per-type distinct sources, unsplit packets,
	// sorted by scans desc then type name asc.
	type oagg struct {
		srcs           map[uint32]struct{}
		scans, packets uint64
	}
	byType := map[inetmodel.ScannerType]*oagg{}
	for i, sc := range scans {
		o := origins[i]
		a := byType[o.Type]
		if a == nil {
			a = &oagg{srcs: map[uint32]struct{}{}}
			byType[o.Type] = a
		}
		a.srcs[sc.Src] = struct{}{}
		a.scans++
		a.packets += sc.Packets
	}
	wantOrigins := []originRow{}
	for typ, a := range byType {
		wantOrigins = append(wantOrigins, originRow{
			Type: typ.String(), Sources: len(a.srcs), Scans: a.scans, Packets: a.packets,
		})
	}
	sort.Slice(wantOrigins, func(i, j int) bool {
		if wantOrigins[i].Scans != wantOrigins[j].Scans {
			return wantOrigins[i].Scans > wantOrigins[j].Scans
		}
		return wantOrigins[i].Type < wantOrigins[j].Type
	})
	wantOriginsJSON, _ := json.Marshal(map[string]any{
		"types": wantOrigins, "degraded": false,
	})

	ts, _, _ := testServer(t, true)
	for _, tc := range []struct {
		url  string
		want []byte
	}{
		{"/v1/tables/ports?top=5", wantPortsJSON},
		{"/v1/tables/tools", wantToolsJSON},
		{"/v1/tables/origins", wantOriginsJSON},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", tc.url, resp.StatusCode, got)
		}
		if string(bytes.TrimRight(got, "\n")) != string(tc.want) {
			t.Fatalf("GET %s not byte-identical to the hand-rolled table:\ngot  %s\nwant %s",
				tc.url, got, tc.want)
		}
	}
}

// TestQueryCanonicalCacheHit: semantically identical requests — different
// predicate order, different list order, duplicated values — canonicalize to
// one cache key, on both surfaces.
func TestQueryCanonicalCacheHit(t *testing.T) {
	ts, reg, _ := testServer(t, true)

	a := `{"where": {"and": [
		{"field": "year", "in": [2023, 2020, 2020]},
		{"field": "tool", "eq": "ZMap"}
	]}, "group_by": ["port"], "aggs": [{"op": "count"}], "limit": 5}`
	b := `{"where": {"and": [
		{"field": "tool", "in": ["ZMap"]},
		{"field": "year", "in": [2020, 2023]}
	]}, "group_by": ["port"], "aggs": [{"op": "count"}], "limit": 5}`

	r1, b1 := postQuery(t, ts.URL, a)
	r2, b2 := postQuery(t, ts.URL, b)
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("status %d/%d", r1.StatusCode, r2.StatusCode)
	}
	if c1, c2 := r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"); c1 != "miss" || c2 != "hit" {
		t.Fatalf("X-Cache %q then %q, want miss then hit", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached body differs from computed body")
	}

	// Legacy surface: comma list vs repeated params vs reordered values all
	// compile to the same AST, hence the same key.
	get := func(q string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", q, resp.StatusCode)
		}
		return resp.Header.Get("X-Cache")
	}
	hits0 := reg.Snapshot().Counter("synserve.cache.hits")
	c1 := get("/v1/tables/ports?year=2020,2023&top=10")
	c2 := get("/v1/tables/ports?year=2023&year=2020&top=10")
	c3 := get("/v1/tables/ports?top=10&year=2020%2C2023")
	if c1 != "miss" || c2 != "hit" || c3 != "hit" {
		t.Fatalf("legacy X-Cache %q %q %q, want miss hit hit", c1, c2, c3)
	}
	if hits := reg.Snapshot().Counter("synserve.cache.hits"); hits != hits0+2 {
		t.Fatalf("cache hits moved %d, want 2", hits-hits0)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts, _, _ := testServer(t, false) // no origins

	for _, body := range []string{
		``,
		`{`,
		`{"unknown": 1}`,
		`{"where": {"field": "nope", "eq": 1}}`,
		`{"aggs": [{"op": "top_k", "field": "port", "k": 1000000000}]}`,
		`{"aggs": [{"op": "quantile", "field": "rate_pps", "qs": [2]}]}`,
		`{"group_by": ["country"], "aggs": [{"op": "count"}]}`, // needs origins
	} {
		resp, out := postQuery(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: %d, want 400 (%s)", body, resp.StatusCode, out)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("POST %q: error body %q", body, out)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: %d, want 405", resp.StatusCode)
	}
}

func TestQueryMetrics(t *testing.T) {
	ts, reg, _ := testServer(t, true)

	postQuery(t, ts.URL, `{"group_by": ["year"], "aggs": [{"op": "count"}]}`)
	postQuery(t, ts.URL, `{broken`)
	snap := reg.Snapshot()
	if snap.Counter("query.requests") == 0 {
		t.Fatal("query.requests did not move")
	}
	if snap.Counter("query.parse_errors") != 1 {
		t.Fatalf("query.parse_errors = %d, want 1", snap.Counter("query.parse_errors"))
	}
	if snap.Counter("query.rows") == 0 {
		t.Fatal("query.rows did not move")
	}
	if snap.Counter("query.partials_merged") == 0 {
		t.Fatal("query.partials_merged did not move")
	}
	if snap.Histograms["query.exec_ns"].Count == 0 {
		t.Fatal("query.exec_ns recorded nothing")
	}
}
