package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/workload"
)

// runReactivePipeline replays the seeded two-phase workload through the
// responder and the campaign detector, returning the closed campaigns.
func runReactivePipeline(t *testing.T, workers int) []*core.Scan {
	t.Helper()
	s, err := workload.NewScenario(workload.Config{
		Year: 2021, Seed: 42, Scale: 0.0005, TelescopeSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := reactive.New(s.Telescope, reactive.DefaultPolicy(1))
	var scans []*core.Scan
	det := core.NewDetector(s.DetectorConfig,
		func(sc *core.Scan) { scans = append(scans, sc) },
		core.WithWorkers(workers))
	s.RunReactive(rt, func(p *packet.Probe, d reactive.Disposition) {
		if d.Reason == telescope.Accepted {
			det.Ingest(p)
		}
	})
	det.FlushAll()
	return scans
}

func canonScans(scans []*core.Scan) []*core.Scan {
	out := append([]*core.Scan(nil), scans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// TestReactiveEndToEnd walks the whole reactive path: a seeded two-phase
// workload is linked by the detector into single campaigns carrying both
// phases, identically under sharding; the campaigns survive an archive
// round trip byte-identically; and the archive answers POST /v1/query
// filters on the reactive fields with the same campaigns.
func TestReactiveEndToEnd(t *testing.T) {
	scans := runReactivePipeline(t, 1)

	// Phase linking: the scout flight and the returning handshake land in
	// ONE campaign — every scan with phase-two traffic also holds its scout
	// packets, and at least one two-phase campaign with a payload exists.
	var twoPhase, withPayload int
	for _, sc := range scans {
		if sc.HandshakePackets > 0 && sc.ScoutPackets == 0 {
			t.Fatalf("campaign from %08x holds handshakes but no scouts: phases split", sc.Src)
		}
		if sc.TwoPhase {
			twoPhase++
			if sc.LinkedDsts == 0 || sc.HandshakePackets == 0 {
				t.Fatalf("two-phase campaign not linked: %+v", sc)
			}
			if len(sc.Payload) > 0 {
				withPayload++
			}
		}
	}
	if twoPhase == 0 {
		t.Fatal("no two-phase campaign detected")
	}
	if withPayload == 0 {
		t.Fatal("no two-phase campaign retained a payload prefix")
	}

	// Sharded detection produces the same campaign multiset: both phases of
	// a flow route to one shard, so linking needs no cross-shard state.
	if shd := runReactivePipeline(t, 4); !reflect.DeepEqual(canonScans(scans), canonScans(shd)) {
		t.Fatalf("sharded run differs: %d vs %d campaigns", len(scans), len(shd))
	}

	// Archive round trip: write, read every scan back, rewrite — the second
	// encoding is byte-identical, so the phase extension loses nothing.
	write := func(list []*core.Scan) []byte {
		var buf bytes.Buffer
		w, err := archive.NewWriter(&buf, archive.WriterConfig{TelescopeSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range list {
			if err := w.Add(sc); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := write(scans)
	rd, err := archive.NewReader(bytes.NewReader(first), int64(len(first)))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []*core.Scan
	err = rd.Scans(archive.Filter{}, func(sc *core.Scan, _ enrich.Origin) {
		c := *sc
		decoded = append(decoded, &c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(scans) {
		t.Fatalf("decoded %d scans, wrote %d", len(decoded), len(scans))
	}
	if !bytes.Equal(first, write(decoded)) {
		t.Fatal("rewriting decoded scans changed the archive bytes")
	}

	// Query surface: the archived campaigns answer a two_phase filter over
	// POST /v1/query with exactly the linked set, reactive attributes intact.
	srv := newServer([]string{"mem"}, []*archive.Reader{rd}, nil, nil, serverConfig{cacheEntries: 32}, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, body := postQuery(t, ts.URL, `{
		"where": {"field": "two_phase", "eq": true},
		"limit": 1000
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sel struct {
		Matched uint64     `json:"matched"`
		Scans   []scanJSON `json:"scans"`
	}
	if err := json.Unmarshal(body, &sel); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if sel.Matched != uint64(twoPhase) {
		t.Fatalf("query matched %d campaigns, detector linked %d", sel.Matched, twoPhase)
	}
	for _, sj := range sel.Scans {
		if !sj.TwoPhase || sj.LinkedDsts == 0 || sj.HandshakePkt == 0 || sj.ISN == "" {
			t.Fatalf("served scan missing reactive attributes: %+v", sj)
		}
	}

	resp, body = postQuery(t, ts.URL, `{
		"group_by": ["two_phase"],
		"aggs": [{"op": "count"}, {"op": "sum", "field": "handshake_packets"}],
		"order_by": "key"
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var agg struct {
		Rows []struct {
			Key []struct {
				Str string `json:"str"`
			} `json:"key"`
			Aggs []struct {
				Count uint64 `json:"count"`
				Int   uint64 `json:"int"`
			} `json:"aggs"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	var sawTrue bool
	for _, r := range agg.Rows {
		if r.Key[0].Str == "true" {
			sawTrue = true
			if r.Aggs[0].Count != uint64(twoPhase) {
				t.Fatalf("grouped count %d, want %d", r.Aggs[0].Count, twoPhase)
			}
			if r.Aggs[1].Int == 0 {
				t.Fatal("two-phase group reports zero handshake packets")
			}
		}
	}
	if !sawTrue {
		t.Fatal("no two_phase=true group in aggregate result")
	}
}
