package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/obs"
)

// TestQueryTimeout504: an expired per-query deadline surfaces as 504 with a
// JSON error body, not a 500 or a half-rendered response.
func TestQueryTimeout504(t *testing.T) {
	path, _ := testArchive(t, false)
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, serverConfig{timeout: time.Nanosecond}, obs.NewRegistry())
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/scans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q not {\"error\": ...}: %v", body, err)
	}
}

// TestDegradedQuery is the end-to-end degraded-mode check: corrupt over 10%
// of an archive's blocks with seeded fault injection, open it skip-corrupt
// as main does, and a /v1/scans query must still complete — flagged
// degraded:true, with the corrupt-block counter equal to the number of
// blocks actually damaged.
func TestDegradedQuery(t *testing.T) {
	path, n := testArchive(t, false)

	// Locate the blocks via a throwaway reader, then flip bytes inside
	// every fourth block's compressed payload (the CRC word is the first 4
	// bytes at Offset; damage lands past it, inside the DEFLATE stream).
	probe, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	zones := probe.Blocks()
	probe.Close()
	if len(zones) < 10 {
		t.Fatalf("test archive has only %d blocks; too coarse to corrupt 10%%", len(zones))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for i, z := range zones {
		if i%4 != 0 {
			continue
		}
		lo := int(z.Offset) + 4
		faultinject.FlipBytes(data, uint64(i+1), 3, lo, lo+int(z.CompressedLen))
		damaged++
	}
	if damaged*10 < len(zones) {
		t.Fatalf("damaged %d of %d blocks, below the 10%% bar", damaged, len(zones))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rd, err := archive.Open(path, archive.WithSkipCorrupt())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	rd.SetMetrics(reg)
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, serverConfig{timeout: 30 * time.Second}, reg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	var res struct {
		Matched  uint64 `json:"matched"`
		Degraded bool   `json:"degraded"`
	}
	getJSON(t, ts.URL+"/v1/scans?limit=10", &res)
	if !res.Degraded {
		t.Fatal("query over a corrupted archive not flagged degraded")
	}
	if res.Matched == 0 || res.Matched >= uint64(n) {
		t.Fatalf("matched %d scans, want some but fewer than the intact %d", res.Matched, n)
	}
	if got := rd.CorruptBlocks(); got != uint64(damaged) {
		t.Fatalf("CorruptBlocks() = %d, want the %d blocks damaged", got, damaged)
	}
	if got := reg.Snapshot().Counter("faults.archive.corrupt_blocks"); got != uint64(damaged) {
		t.Fatalf("faults.archive.corrupt_blocks = %d, want %d", got, damaged)
	}

	// The stats endpoint rolls the same counters up for operators.
	var stats struct {
		Degraded bool              `json:"degraded"`
		Faults   map[string]uint64 `json:"faults"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if !stats.Degraded || stats.Faults["faults.archive.corrupt_blocks"] != uint64(damaged) {
		t.Fatalf("stats degraded=%v faults=%v", stats.Degraded, stats.Faults)
	}
}
