package main

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/tools"
)

// maxQueryBody bounds a POST /v1/query request body; a structurally valid
// request never comes close, and the cap keeps a hostile body from ballooning
// the JSON decoder.
const maxQueryBody = 1 << 20

// querySources adapts the request's frozen source set for the query engine:
// static single-file readers first, then each live store's pinned view, the
// same order the legacy streaming walk used, so select-mode row order is
// unchanged across the rewiring.
func (src *sources) querySources() []query.Source {
	out := make([]query.Source, 0, len(src.s.readers)+len(src.views))
	for _, rd := range src.s.readers {
		out = append(out, query.ReaderSource{R: rd})
	}
	for _, v := range src.views {
		out = append(out, query.ViewSource{V: v})
	}
	return out
}

// runQuery executes a validated query against the request's sources through
// the engine: one streaming partial per source under zone-map pushdown,
// merged in source order. Every endpoint — POST /v1/query and the legacy GET
// surfaces — funnels through here (inside a singleflight leader), so
// pushdown, deadline abort, degraded reads and the query.* metrics behave
// identically everywhere.
func (src *sources) runQuery(ctx context.Context, q *query.Query) (*query.Result, error) {
	s := src.s
	sp := obs.StartSpan(s.mQueryExec)
	defer sp.End()
	srcs := src.querySources()
	res, err := query.Run(ctx, q, srcs...)
	if err != nil {
		return nil, err
	}
	s.mQueryPartials.Add(uint64(len(srcs)))
	if q.SelectMode() {
		s.mQueryRows.Add(uint64(len(res.Scans)))
	} else {
		s.mQueryRows.Add(uint64(len(res.Rows)))
	}
	return res, nil
}

// handleQuery serves POST /v1/query: the typed-AST analytical endpoint. The
// JSON body parses into a query (any malformed or over-cap request is a 400),
// which is canonicalized so semantically identical requests share one
// generation-keyed cache entry — and one singleflight — then executed through
// the shared hardened path with the same admission, deadline and
// degraded-read semantics as every other endpoint.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sp := obs.StartSpan(s.mLatency)
	defer sp.End()
	s.mRequests.Inc()
	s.mQueryRequests.Inc()
	if r.Method != http.MethodPost {
		s.mErrors.Inc()
		writeJSONError(w, http.StatusMethodNotAllowed, "method not allowed (POST a JSON query)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBody))
	if err != nil {
		s.mErrors.Inc()
		s.mQueryParseErrors.Inc()
		writeJSONError(w, http.StatusBadRequest, "read request body: "+err.Error())
		return
	}
	q, err := query.Parse(body)
	if err != nil {
		s.mErrors.Inc()
		s.mQueryParseErrors.Inc()
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	q = q.Canonicalize()

	src := s.acquire()
	defer src.release()
	if q.NeedsOrigin() && !src.hasOrigins() {
		s.mErrors.Inc()
		writeJSONError(w, http.StatusBadRequest,
			"query needs origins, but no loaded archive carries them (write one with syneval -archive-out)")
		return
	}
	key := src.genToken() + "/v1/query?" + q.Key()
	render := func(res *query.Result, degraded bool) (any, error) {
		return renderResult(q, res, degraded), nil
	}
	s.execute(w, r, src, q, key, render)
}

// renderResult shapes an engine result for the /v1/query wire form: select
// mode mirrors /v1/scans (matched/returned/truncated/scans), aggregate mode
// returns the sorted rows with their group keys and per-aggregate values.
func renderResult(q *query.Query, res *query.Result, degraded bool) map[string]any {
	if q.SelectMode() {
		scans := make([]scanJSON, 0, len(res.Scans))
		for _, rec := range res.Scans {
			scans = append(scans, toScanJSON(rec.Scan, rec.Origin))
		}
		return map[string]any{
			"matched":   res.Matched,
			"returned":  len(scans),
			"truncated": res.Truncated,
			"degraded":  degraded,
			"scans":     scans,
		}
	}
	rows := res.Rows
	if rows == nil {
		rows = []query.Row{}
	}
	return map[string]any{
		"matched":    res.Matched,
		"total_rows": res.TotalRows,
		"rows":       rows,
		"degraded":   degraded,
	}
}

func toScanJSON(sc *core.Scan, o *enrich.Origin) scanJSON {
	sj := scanJSON{
		Src:          ipString(sc.Src),
		StartNS:      sc.Start,
		EndNS:        sc.End,
		Packets:      sc.Packets,
		DistinctDsts: sc.DistinctDsts,
		Ports:        sc.Ports,
		Tool:         sc.Tool.String(),
		Qualified:    sc.Qualified,
		RatePPS:      sc.RatePPS,
		Coverage:     sc.Coverage,
		TwoPhase:     sc.TwoPhase,
		LinkedDsts:   sc.LinkedDsts,
		HandshakePkt: sc.HandshakePackets,
		PayloadBytes: sc.PayloadBytes,
	}
	if sc.ISN != fingerprint.ISNUnknown {
		sj.ISN = sc.ISN.String()
	}
	if o != nil {
		sj.Origin = &originJSON{
			Country: o.Country, ASN: o.ASN,
			Type: o.Type.String(), OrgName: o.OrgName,
		}
	}
	return sj
}

// filterExpr compiles the legacy fixed URL parameters — year, tool, port
// (each repeatable or comma-separated), src (CIDR), minrate/maxrate (pps),
// qualified (bool) — into the query AST, so the deprecated parameter surface
// and POST /v1/query share one filter representation, one pushdown planner
// and one execution path. nil means no filter.
func filterExpr(vals url.Values) (query.Expr, error) {
	var conj []query.Expr
	if vs := splitList(vals["year"]); len(vs) > 0 {
		years := make([]int, 0, len(vs))
		for _, v := range vs {
			y, err := strconv.Atoi(v)
			if err != nil {
				return nil, badRequest("invalid year %q", v)
			}
			years = append(years, y)
		}
		conj = append(conj, query.YearIn(years...))
	}
	if vs := splitList(vals["tool"]); len(vs) > 0 {
		ts := make([]tools.Tool, 0, len(vs))
		for _, v := range vs {
			t, ok := toolNames[strings.ToLower(v)]
			if !ok {
				return nil, badRequest("unknown tool %q (want one of %s)", v, strings.Join(knownToolNames(), ", "))
			}
			ts = append(ts, t)
		}
		conj = append(conj, query.ToolIn(ts...))
	}
	if vs := splitList(vals["port"]); len(vs) > 0 {
		ports := make([]uint16, 0, len(vs))
		for _, v := range vs {
			p, err := strconv.ParseUint(v, 10, 16)
			if err != nil {
				return nil, badRequest("invalid port %q", v)
			}
			ports = append(ports, uint16(p))
		}
		conj = append(conj, query.PortAny(ports...))
	}
	if v := vals.Get("src"); v != "" {
		pfx, err := inetmodel.ParsePrefix(v)
		if err != nil {
			return nil, badRequest("invalid src prefix %q: %v", v, err)
		}
		conj = append(conj, query.SrcIn(pfx))
	}
	var minRate, maxRate float64
	var err error
	if v := vals.Get("minrate"); v != "" {
		if minRate, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, badRequest("invalid minrate %q", v)
		}
	}
	if v := vals.Get("maxrate"); v != "" {
		if maxRate, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, badRequest("invalid maxrate %q", v)
		}
	}
	if minRate > 0 || maxRate > 0 {
		conj = append(conj, query.RateBetween(minRate, maxRate))
	}
	if v := vals.Get("qualified"); v != "" {
		want, err := strconv.ParseBool(v)
		if err != nil {
			return nil, badRequest("invalid qualified %q", v)
		}
		// The legacy parameter only ever narrowed (qualified=false was a
		// no-op); compile it the same way.
		if want {
			conj = append(conj, query.Qualified(true))
		}
	}
	switch len(conj) {
	case 0:
		return nil, nil
	case 1:
		return conj[0], nil
	default:
		return query.And(conj...), nil
	}
}

// compileFunc turns one legacy endpoint's URL parameters into an engine query
// plus the renderer for its historical wire shape. Compilation happens before
// the cache lookup: the canonicalized query IS the cache key, so any two
// parameterizations that mean the same thing (list order, comma vs repeated
// params, a defaulted limit spelled out) share one entry.
type compileFunc func(src *sources, vals url.Values) (*query.Query, renderFunc, error)

// compileScans maps /v1/scans onto a select-mode query (limit default 1000).
func compileScans(src *sources, vals url.Values) (*query.Query, renderFunc, error) {
	where, err := filterExpr(vals)
	if err != nil {
		return nil, nil, err
	}
	limit := 1000
	if v := vals.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			return nil, nil, badRequest("invalid limit %q (want a positive integer)", v)
		}
	}
	q := &query.Query{Where: where, Limit: limit}
	render := func(res *query.Result, degraded bool) (any, error) {
		scans := make([]scanJSON, 0, len(res.Scans))
		for _, rec := range res.Scans {
			scans = append(scans, toScanJSON(rec.Scan, rec.Origin))
		}
		return map[string]any{
			"matched":   res.Matched,
			"returned":  len(scans),
			"truncated": res.Truncated,
			"degraded":  degraded,
			"scans":     scans,
		}, nil
	}
	return q, render, nil
}

// compilePorts maps /v1/tables/ports onto group-by-port with count and the
// split packet sum; the engine's default ordering (count descending, port
// ascending) and row limit reproduce the historical ranking exactly.
func compilePorts(src *sources, vals url.Values) (*query.Query, renderFunc, error) {
	where, err := filterExpr(vals)
	if err != nil {
		return nil, nil, err
	}
	top := 10
	if v := vals.Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil || top < 1 {
			return nil, nil, badRequest("invalid top %q (want a positive integer)", v)
		}
	}
	q := &query.Query{
		Where:   where,
		GroupBy: []query.Field{query.FieldPort},
		Aggs: []query.Agg{
			{Op: query.OpCount},
			{Op: query.OpSum, Field: query.FieldPackets},
		},
		Limit: top,
	}
	render := func(res *query.Result, degraded bool) (any, error) {
		rows := make([]portRow, 0, len(res.Rows))
		for _, r := range res.Rows {
			share := 0.0
			if res.Matched > 0 {
				share = float64(r.Aggs[0].Count) / float64(res.Matched)
			}
			rows = append(rows, portRow{
				Port:    uint16(r.Key[0].Num),
				Scans:   r.Aggs[0].Count,
				Packets: r.Aggs[1].Int,
				Share:   share,
			})
		}
		return map[string]any{"total_scans": res.Matched, "ports": rows, "degraded": degraded}, nil
	}
	return q, render, nil
}

// compileTools maps /v1/tables/tools onto group-by-tool with count and the
// qualified tally (an exact 0/1 integer sum); the renderer walks the
// canonical tool display order, skipping tools with no scans, as the
// hand-rolled tally always did.
func compileTools(src *sources, vals url.Values) (*query.Query, renderFunc, error) {
	where, err := filterExpr(vals)
	if err != nil {
		return nil, nil, err
	}
	q := &query.Query{
		Where:   where,
		GroupBy: []query.Field{query.FieldTool},
		Aggs: []query.Agg{
			{Op: query.OpCount},
			{Op: query.OpSum, Field: query.FieldQualified},
		},
		Order: query.OrderKey,
	}
	render := func(res *query.Result, degraded bool) (any, error) {
		scans := make([]uint64, tools.NumTools())
		qualified := make([]uint64, tools.NumTools())
		for _, r := range res.Rows {
			t := tools.Tool(r.Key[0].Num)
			scans[t] = r.Aggs[0].Count
			qualified[t] = r.Aggs[1].Int
		}
		rows := []toolRow{}
		for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
			if scans[t] == 0 {
				continue
			}
			rows = append(rows, toolRow{
				Tool: t.String(), Scans: scans[t], Qualified: qualified[t],
				Share: float64(scans[t]) / float64(res.Matched),
			})
		}
		return map[string]any{"total_scans": res.Matched, "tools": rows, "degraded": degraded}, nil
	}
	return q, render, nil
}

// compileOrigins maps /v1/tables/origins onto group-by-scanner-type with
// count, the unsplit packet sum and an exact distinct-source count. The
// legacy table sorts by scans descending with ties broken by the type NAME
// (a string comparison), which differs from the engine's numeric-key
// tiebreak, so the renderer re-sorts.
func compileOrigins(src *sources, vals url.Values) (*query.Query, renderFunc, error) {
	if !src.hasOrigins() {
		return nil, nil, badRequest("no loaded archive carries origins (write one with syneval -archive-out)")
	}
	where, err := filterExpr(vals)
	if err != nil {
		return nil, nil, err
	}
	q := &query.Query{
		Where:   where,
		GroupBy: []query.Field{query.FieldType},
		Aggs: []query.Agg{
			{Op: query.OpCount},
			{Op: query.OpSum, Field: query.FieldPackets},
			{Op: query.OpCountDistinct, Field: query.FieldSrc},
		},
		Order: query.OrderKey,
	}
	render := func(res *query.Result, degraded bool) (any, error) {
		rows := []originRow{}
		for _, r := range res.Rows {
			rows = append(rows, originRow{
				Type:    r.Key[0].Str,
				Sources: int(r.Aggs[2].Count),
				Scans:   r.Aggs[0].Count,
				Packets: r.Aggs[1].Int,
			})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Scans != rows[j].Scans {
				return rows[i].Scans > rows[j].Scans
			}
			return rows[i].Type < rows[j].Type
		})
		return map[string]any{"types": rows, "degraded": degraded}, nil
	}
	return q, render, nil
}
