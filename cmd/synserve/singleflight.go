package main

import (
	"context"
	"sync"

	"github.com/synscan/synscan/internal/query"
)

// flight is one in-progress query execution, shared by every request that
// asked for the same canonical cache key while it was running. The first
// request in becomes the leader and runs the archive scan; followers wait on
// done and read the shared outcome. waiters counts the requests still
// attached: when the last one disconnects before completion, the flight's
// execution context is canceled, so a scan nobody will read stops walking
// the archive instead of running to completion.
type flight struct {
	done     chan struct{}
	res      *query.Result
	degraded bool
	err      error

	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
}

// setCancel installs the leader's execution-cancel hook. If every waiter
// already left in the window between join and here, cancel immediately: the
// flight was abandoned before it started.
func (f *flight) setCancel(cancel context.CancelFunc) {
	f.mu.Lock()
	f.cancel = cancel
	abandoned := f.waiters == 0
	f.mu.Unlock()
	if abandoned {
		cancel()
	}
}

// leave detaches one request (its client disconnected, or it stopped
// waiting). When the last attached request leaves an unfinished flight, the
// execution is canceled. Calling leave after the flight finished is
// harmless: canceling a completed execution context is a no-op.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	cancel := f.cancel
	last := f.waiters == 0
	f.mu.Unlock()
	if last && cancel != nil {
		cancel()
	}
}

// flightGroup deduplicates identical in-flight queries, keyed by the same
// canonicalized generation-prefixed string the result cache uses. It is the
// layer between the cache (finished results) and the engine (running scans):
// a cache miss joins or starts a flight, so N identical concurrent misses
// cost one archive scan, and the cache fill happens once. Because the key
// carries the stores' catalog generations, requests pinned to different
// segment sets never share a flight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key, creating it (leader == true) when none is
// running.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f := g.m[key]; f != nil {
		f.mu.Lock()
		f.waiters++
		f.mu.Unlock()
		return f, false
	}
	f = &flight{done: make(chan struct{}), waiters: 1}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and retires the flight: later
// requests for the same key start fresh (or hit the cache the leader fed).
func (g *flightGroup) finish(key string, f *flight, res *query.Result, degraded bool, err error) {
	f.res, f.degraded, f.err = res, degraded, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
