package main

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached rendered response body.
type cacheEntry struct {
	key  string
	body []byte
}

// lruCache is a fixed-capacity LRU over canonicalized query keys. The
// cached value is the fully rendered JSON body, so a hit costs one map
// lookup and one write — no filter evaluation, no block decompression.
// A nil *lruCache (capacity 0) never hits and never stores.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *lruCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
