package main

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached rendered response body.
type cacheEntry struct {
	key  string
	body []byte
}

// lruCache is an LRU over canonicalized query keys, bounded two ways: by
// entry count and — so a handful of huge scan-list responses cannot blow the
// process's memory — by total body bytes. Bodies larger than maxEntry are
// never stored at all: one response worth a whole cache generation would
// evict everything else for a single key's benefit. The cached value is the
// fully rendered JSON body, so a hit costs one map lookup and one write —
// no filter evaluation, no block decompression. A nil *lruCache (capacity 0)
// never hits and never stores.
type lruCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	maxEntry int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

// newLRU builds a cache holding at most capacity responses and (when
// maxBytes > 0) at most maxBytes of body data, whichever bound bites first.
func newLRU(capacity int, maxBytes int64) *lruCache {
	if capacity <= 0 {
		return nil
	}
	c := &lruCache{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
	if maxBytes > 0 {
		// One entry may take at most an eighth of the budget, so the cache
		// always holds a handful of entries even when bodies run large.
		c.maxEntry = maxBytes / 8
		if c.maxEntry < 1 {
			c.maxEntry = 1
		}
	}
	return c
}

func (c *lruCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *lruCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	if c.maxEntry > 0 && int64(len(body)) > c.maxEntry {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		el := c.ll.Back()
		c.ll.Remove(el)
		e := el.Value.(*cacheEntry)
		c.bytes -= int64(len(e.body))
		delete(c.items, e.key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// bytesUsed reports the total cached body bytes, for the server.cache.bytes
// gauge.
func (c *lruCache) bytesUsed() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// entryCap reports the largest body this cache will store (0 = no per-entry
// bound). Streaming responses use it to cap their cache tee buffer.
func (c *lruCache) entryCap() int64 {
	if c == nil {
		return 0
	}
	return c.maxEntry
}
