package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/tools"
)

// testArchive writes a small deterministic archive: scans across 2020 and
// 2023, three tools, a handful of ports, sources in 10.0.0.0/24.
func testArchive(t *testing.T, origins bool) (path string, n int) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "test.syna")
	w, err := archive.Create(path, archive.WriterConfig{
		TelescopeSize: 1024, Origins: origins, BlockBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	portSets := [][]uint16{{22}, {80, 443}, {23, 2323}, {443}}
	toolSet := []tools.Tool{tools.ToolZMap, tools.ToolMasscan, tools.ToolCustom}
	types := []inetmodel.ScannerType{
		inetmodel.TypeHosting, inetmodel.TypeResidential, inetmodel.TypeInstitutional,
	}
	n = 600
	for i := 0; i < n; i++ {
		year, j := 2020, i
		if i >= n/2 {
			year, j = 2023, i-n/2
		}
		start := time.Date(year, time.March, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			int64(j)*int64(time.Hour)
		sc := &core.Scan{
			Src:          0x0A000000 + uint32(i%200), // 10.0.0.0/24 and a bit above
			Start:        start,
			End:          start + int64(30*time.Minute),
			Packets:      uint64(100 + i),
			DistinctDsts: 50 + i%10,
			Ports:        portSets[i%len(portSets)],
			Tool:         toolSet[i%len(toolSet)],
			Qualified:    i%5 != 0,
			RatePPS:      float64(100 + i%900),
			Coverage:     0.4,
		}
		if origins {
			o := enrich.Origin{
				Country: "DE", ASN: uint32(100 + i%7),
				Type: types[i%len(types)], OrgID: -1,
			}
			err = w.AddWithOrigin(sc, o)
		} else {
			err = w.Add(sc)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, n
}

func testServer(t *testing.T, origins bool) (*httptest.Server, *obs.Registry, int) {
	t.Helper()
	path, n := testArchive(t, origins)
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	reg := obs.NewRegistry()
	rd.SetMetrics(reg)
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, serverConfig{cacheEntries: 32}, reg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, reg, n
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
	return resp
}

func TestScansEndpoint(t *testing.T) {
	ts, _, n := testServer(t, true)

	var res struct {
		Matched   uint64     `json:"matched"`
		Returned  int        `json:"returned"`
		Truncated bool       `json:"truncated"`
		Scans     []scanJSON `json:"scans"`
	}
	getJSON(t, ts.URL+"/v1/scans?limit=50", &res)
	if res.Matched != uint64(n) {
		t.Fatalf("matched %d, want %d", res.Matched, n)
	}
	if res.Returned != 50 || len(res.Scans) != 50 || !res.Truncated {
		t.Fatalf("returned=%d len=%d truncated=%v", res.Returned, len(res.Scans), res.Truncated)
	}
	if res.Scans[0].Origin == nil {
		t.Fatal("origins archive returned scans without origin")
	}

	getJSON(t, ts.URL+"/v1/scans?year=2020&limit=1000", &res)
	if res.Matched != uint64(n/2) {
		t.Fatalf("year=2020 matched %d, want %d", res.Matched, n/2)
	}
	for _, sc := range res.Scans {
		if y := time.Unix(0, sc.StartNS).UTC().Year(); y != 2020 {
			t.Fatalf("year filter leaked a %d scan", y)
		}
	}

	getJSON(t, ts.URL+"/v1/scans?tool=zmap&port=22&qualified=true&limit=1000", &res)
	if res.Matched == 0 {
		t.Fatal("tool+port+qualified filter matched nothing")
	}
	for _, sc := range res.Scans {
		if sc.Tool != "ZMap" || !sc.Qualified {
			t.Fatalf("filter leaked %s qualified=%v", sc.Tool, sc.Qualified)
		}
	}

	getJSON(t, ts.URL+"/v1/scans?src=10.0.0.0/28&limit=1000", &res)
	if res.Matched == 0 || res.Matched == uint64(n) {
		t.Fatalf("src prefix filter matched %d of %d", res.Matched, n)
	}
}

func TestTablesEndpoints(t *testing.T) {
	ts, _, n := testServer(t, true)

	var ports struct {
		TotalScans uint64    `json:"total_scans"`
		Ports      []portRow `json:"ports"`
	}
	getJSON(t, ts.URL+"/v1/tables/ports?top=3", &ports)
	if ports.TotalScans != uint64(n) || len(ports.Ports) != 3 {
		t.Fatalf("ports: total=%d rows=%d", ports.TotalScans, len(ports.Ports))
	}
	if ports.Ports[0].Scans < ports.Ports[1].Scans {
		t.Fatal("ports not ranked by scans")
	}

	var tls struct {
		TotalScans uint64    `json:"total_scans"`
		Tools      []toolRow `json:"tools"`
	}
	getJSON(t, ts.URL+"/v1/tables/tools", &tls)
	if tls.TotalScans != uint64(n) || len(tls.Tools) != 3 {
		t.Fatalf("tools: total=%d rows=%d", tls.TotalScans, len(tls.Tools))
	}
	var share float64
	for _, r := range tls.Tools {
		share += r.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("tool shares sum to %v", share)
	}

	var origins struct {
		Types []originRow `json:"types"`
	}
	getJSON(t, ts.URL+"/v1/tables/origins", &origins)
	if len(origins.Types) != 3 {
		t.Fatalf("origins: %d types, want 3", len(origins.Types))
	}
	var scans uint64
	for _, r := range origins.Types {
		scans += r.Scans
		if r.Sources == 0 {
			t.Fatalf("type %s has no sources", r.Type)
		}
	}
	if scans != uint64(n) {
		t.Fatalf("origin scans sum to %d, want %d", scans, n)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _, n := testServer(t, true)

	var stats struct {
		Archives     []archiveInfo `json:"archives"`
		CacheEntries int           `json:"cache_entries"`
		Metrics      obs.Snapshot  `json:"metrics"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.Archives) != 1 {
		t.Fatalf("%d archives", len(stats.Archives))
	}
	a := stats.Archives[0]
	if a.Scans != uint64(n) || a.TelescopeSize != 1024 || !a.Origins {
		t.Fatalf("archive info %+v", a)
	}
	if a.MinYear != 2020 || a.MaxYear != 2023 {
		t.Fatalf("year span %d-%d, want 2020-2023", a.MinYear, a.MaxYear)
	}
	if stats.Metrics.Counters["synserve.http.requests"] == 0 {
		t.Fatal("stats snapshot missing request counter")
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := testServer(t, false)
	for _, q := range []string{
		"/v1/scans?year=twenty",
		"/v1/scans?tool=nessus",
		"/v1/scans?port=99999",
		"/v1/scans?src=300.0.0.0/8",
		"/v1/scans?limit=0",
		"/v1/scans?qualified=maybe",
		"/v1/tables/ports?top=-1",
		"/v1/tables/origins", // origin-less archive
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", q, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/scans", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", resp.StatusCode)
	}
}

// TestCacheHits: the second identical query is served from the LRU — same
// body, X-Cache flips to hit, and the hit counter moves. Parameter order
// must not fragment the cache.
func TestCacheHits(t *testing.T) {
	ts, reg, _ := testServer(t, true)

	get := func(q string) (string, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", q, resp.StatusCode)
		}
		return resp.Header.Get("X-Cache"), body
	}

	c1, b1 := get("/v1/scans?year=2020&tool=zmap&limit=20")
	c2, b2 := get("/v1/scans?year=2020&tool=zmap&limit=20")
	c3, b3 := get("/v1/scans?tool=zmap&limit=20&year=2020") // reordered params
	if c1 != "miss" || c2 != "hit" || c3 != "hit" {
		t.Fatalf("X-Cache sequence %q %q %q, want miss hit hit", c1, c2, c3)
	}
	if string(b1) != string(b2) || string(b1) != string(b3) {
		t.Fatal("cached body differs from computed body")
	}

	snap := reg.Snapshot()
	if hits := snap.Counter("synserve.cache.hits"); hits != 2 {
		t.Fatalf("cache hits %d, want 2", hits)
	}
	if misses := snap.Counter("synserve.cache.misses"); misses != 1 {
		t.Fatalf("cache misses %d, want 1", misses)
	}
}

// TestConcurrentQueries hammers every endpoint from several goroutines;
// run under -race this doubles as the data-race check for the shared
// reader, cache and counters.
func TestConcurrentQueries(t *testing.T) {
	ts, reg, _ := testServer(t, true)

	urls := []string{
		"/v1/scans?year=2020&limit=10",
		"/v1/scans?year=2023&tool=masscan&limit=10",
		"/v1/tables/ports?top=5",
		"/v1/tables/tools?qualified=true",
		"/v1/tables/origins?year=2020",
		"/v1/stats",
	}
	const goroutines, rounds = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				u := urls[(g+i)%len(urls)]
				resp, err := http.Get(ts.URL + u)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: %d", u, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("synserve.http.requests"); got != goroutines*rounds {
		t.Fatalf("requests %d, want %d", got, goroutines*rounds)
	}
	if snap.Counter("synserve.cache.hits") == 0 {
		t.Fatal("no cache hits after repeated identical queries")
	}
	if snap.Counter("synserve.http.errors") != 0 {
		t.Fatalf("errors %d", snap.Counter("synserve.http.errors"))
	}
}

// TestGracefulShutdown: SIGTERM (via the same signal.NotifyContext wiring
// main uses) drains the server and serve returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	path, _ := testArchive(t, false)
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, serverConfig{cacheEntries: 8}, obs.NewRegistry())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}

	if _, err := http.Get("http://" + ln.Addr().String() + "/v1/stats"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
