package main

import (
	"strconv"
	"strings"

	"github.com/synscan/synscan/internal/archive"
)

// sources is one request's frozen view of everything the server can query:
// the static single-file readers plus a CatalogView per live segment store.
// Acquiring the views up front pins each store's segment set for the whole
// request, so a catalog refresh or compaction mid-query never changes (or
// closes) what the request is reading. Release returns the views when the
// response is rendered.
type sources struct {
	s     *server
	views []*archive.CatalogView
}

// acquire snapshots every catalog. Cheap: a refcount bump per store, no I/O.
func (s *server) acquire() *sources {
	src := &sources{s: s}
	for _, c := range s.catalogs {
		src.views = append(src.views, c.View())
	}
	return src
}

// release returns the catalog views; retired segment readers close on their
// last release.
func (src *sources) release() {
	for _, v := range src.views {
		v.Release()
	}
}

// genToken renders the stores' catalog generations into a cache-key prefix
// ("g3.7|"). Any segment-set change — discovery, compaction, an unreadable
// segment healing — bumps a generation, so bodies cached against the old
// segment set can never be served for the new one. Static-file-only servers
// get the empty token: their archive set is fixed for the process lifetime.
func (src *sources) genToken() string {
	if len(src.views) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('g')
	for i, v := range src.views {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(v.Generation(), 10))
	}
	b.WriteByte('|')
	return b.String()
}

// degraded reports whether results served from these sources may be
// incomplete: a static reader skipped corrupt blocks, a store is missing an
// unreadable segment, or a segment reader skipped corrupt blocks.
func (src *sources) degraded() bool {
	for _, rd := range src.s.readers {
		if rd.CorruptBlocks() > 0 {
			return true
		}
	}
	for _, v := range src.views {
		if v.Degraded() {
			return true
		}
	}
	return false
}

// hasOrigins reports whether any queryable archive carries origins.
func (src *sources) hasOrigins() bool {
	for _, rd := range src.s.readers {
		if rd.HasOrigins() {
			return true
		}
	}
	for _, v := range src.views {
		for i := 0; i < v.Len(); i++ {
			if v.Reader(i).HasOrigins() {
				return true
			}
		}
	}
	return false
}
