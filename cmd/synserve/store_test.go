package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/tools"
)

// storeScans builds n simple scans starting at ordinal base, so successive
// batches are distinguishable by count.
func storeScans(base, n int) []*core.Scan {
	out := make([]*core.Scan, 0, n)
	for i := 0; i < n; i++ {
		start := time.Date(2022, time.May, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			int64(base+i)*int64(time.Minute)
		out = append(out, &core.Scan{
			Src:          0x0A000000 + uint32(base+i),
			Start:        start,
			End:          start + int64(10*time.Minute),
			Packets:      uint64(100 + i),
			DistinctDsts: 60,
			Ports:        []uint16{443},
			Tool:         tools.ToolZMap,
			Qualified:    true,
			RatePPS:      200,
			Coverage:     0.5,
		})
	}
	return out
}

// getCache GETs a query and returns the X-Cache header and parsed body.
func getCache(t *testing.T, url string, into any) string {
	t.Helper()
	return getJSON(t, url, into).Header.Get("X-Cache")
}

// TestSegmentStoreServing: synserve over a live segment store picks up newly
// sealed segments on Refresh, and the result cache follows — a cached body is
// served only while the store generation it was computed against is current.
// Regression test for serving stale cached bodies after the segment set
// changed.
func TestSegmentStoreServing(t *testing.T) {
	dir := t.TempDir()
	sw, err := archive.OpenSegmentDir(dir, archive.SegmentConfig{TelescopeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	for _, sc := range storeScans(0, 100) {
		if err := sw.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cat, err := archive.OpenCatalog(dir, archive.CatalogConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	srv := newServer(nil, nil, []string{dir}, []*archive.Catalog{cat}, serverConfig{cacheEntries: 32}, reg)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var res struct {
		Matched  uint64 `json:"matched"`
		Degraded bool   `json:"degraded"`
	}
	q := ts.URL + "/v1/scans?limit=1"
	if c := getCache(t, q, &res); c != "miss" || res.Matched != 100 {
		t.Fatalf("first query: cache=%s matched=%d", c, res.Matched)
	}
	if c := getCache(t, q, &res); c != "hit" || res.Matched != 100 {
		t.Fatalf("repeat query: cache=%s matched=%d", c, res.Matched)
	}

	// Seal a second segment and let the catalog discover it: the same URL
	// must recompute (new generation, new cache key), not serve the stale
	// 100-scan body.
	for _, sc := range storeScans(100, 50) {
		if err := sw.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	if changed, err := cat.Refresh(); err != nil || !changed {
		t.Fatalf("refresh: changed=%v err=%v", changed, err)
	}
	if c := getCache(t, q, &res); c != "miss" || res.Matched != 150 {
		t.Fatalf("post-discovery query: cache=%s matched=%d, want miss/150", c, res.Matched)
	}
	if c := getCache(t, q, &res); c != "hit" || res.Matched != 150 {
		t.Fatalf("post-discovery repeat: cache=%s matched=%d", c, res.Matched)
	}

	// Compaction changes the segment set (and generation) without changing
	// the data: the cache key moves, the answer does not.
	comp := archive.NewCompactor(sw, archive.CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30})
	if n, err := comp.CompactOnce(); err != nil || n != 2 {
		t.Fatalf("compaction: n=%d err=%v", n, err)
	}
	if _, err := cat.Refresh(); err != nil {
		t.Fatal(err)
	}
	if c := getCache(t, q, &res); c != "miss" || res.Matched != 150 {
		t.Fatalf("post-compaction query: cache=%s matched=%d, want miss/150", c, res.Matched)
	}

	var stats struct {
		Stores []storeInfo `json:"stores"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.Stores) != 1 || stats.Stores[0].Segments != 1 || stats.Stores[0].Scans != 150 {
		t.Fatalf("stats stores: %+v", stats.Stores)
	}
}

// TestDegradedResponsesNotCached: a response computed while an archive is
// degraded (corrupt blocks skipped mid-read) must not enter the result cache
// — repairing the file would otherwise keep serving the incomplete body.
// Regression test for caching degraded:true bodies.
func TestDegradedResponsesNotCached(t *testing.T) {
	path, n := testArchive(t, false)

	// Damage one block's payload so the first read discovers the corruption.
	probe, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	zones := probe.Blocks()
	probe.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	z := zones[1]
	faultinject.FlipBytes(data, 5, 3, int(z.Offset)+4, int(z.Offset)+4+int(z.CompressedLen))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rd, err := archive.Open(path, archive.WithSkipCorrupt())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rd.Close() })
	srv := newServer([]string{path}, []*archive.Reader{rd}, nil, nil, serverConfig{cacheEntries: 32}, obs.NewRegistry())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var res struct {
		Matched  uint64 `json:"matched"`
		Degraded bool   `json:"degraded"`
	}
	q := ts.URL + "/v1/scans?limit=1"
	// The corruption is only discovered during the first read, so the first
	// body may or may not carry degraded:true depending on decode order — but
	// by the time the cache-put decision runs, CorruptBlocks is non-zero and
	// the body must be dropped.
	if c := getCache(t, q, &res); c != "miss" || res.Matched >= uint64(n) {
		t.Fatalf("first query: cache=%s matched=%d of %d", c, res.Matched, n)
	}
	if srv.cache.len() != 0 {
		t.Fatalf("degraded body entered the cache (%d entries)", srv.cache.len())
	}
	if c := getCache(t, q, &res); c != "miss" || !res.Degraded {
		t.Fatalf("second query: cache=%s degraded=%v, want recompute", c, res.Degraded)
	}
	if srv.cache.len() != 0 {
		t.Fatal("degraded body entered the cache on the second read")
	}
}

// TestEmptyStoreServes: a store with no segments yet (syningest not started)
// serves empty results rather than failing.
func TestEmptyStoreServes(t *testing.T) {
	dir := t.TempDir()
	cat, err := archive.OpenCatalog(dir, archive.CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	srv := newServer(nil, nil, []string{dir}, []*archive.Catalog{cat}, serverConfig{cacheEntries: 8}, obs.NewRegistry())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var res struct {
		Matched  uint64 `json:"matched"`
		Degraded bool   `json:"degraded"`
	}
	if c := getCache(t, ts.URL+"/v1/scans", &res); c != "miss" || res.Matched != 0 || res.Degraded {
		t.Fatalf("empty store: cache=%s matched=%d degraded=%v", c, res.Matched, res.Degraded)
	}
	resp, err := http.Get(ts.URL + "/v1/tables/origins")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("origins over empty store: %d, want 400", resp.StatusCode)
	}
}
