// Command synalyze reads a telescope capture — pcap or compact flowlog
// spool, detected by magic — and runs the paper's methodology over it: SYN
// filtering, campaign detection (§3.4), tool fingerprinting (§3.3), and
// summary reporting.
//
// Usage:
//
//	syntelescope -year 2020 -out capture.pcap
//	syntelescope -year 2020 -format spool -out capture.spool
//	synalyze -telescope 4096 capture.pcap
//	synalyze capture.spool            # telescope size from the header
//
// For pcap input the -telescope flag must match the capture's monitored-
// address count: rate and coverage extrapolation depend on it. Spools
// carry it in their header.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/flowlog"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/pcap"
	"github.com/synscan/synscan/internal/pcapng"
	"github.com/synscan/synscan/internal/report"
	"github.com/synscan/synscan/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synalyze: ")

	telSize := flag.Int("telescope", 4096, "monitored address count of the capture")
	minDsts := flag.Int("min-dsts", 0, "campaign threshold on distinct destinations (0 = paper default scaled)")
	topN := flag.Int("top", 10, "ranking depth for the port tables")
	workers := flag.Int("workers", 1, "campaign-detector shards; >1 runs detection on that many goroutines")
	reactiveMode := flag.Bool("reactive", false, "admit phase-two TCP segments (handshake ACKs, payload pushes) from a reactive capture instead of dropping all non-SYNs")
	archiveOut := flag.String("archive", "", "persist every detected campaign to this archive file as it closes (queryable with syneval -archive / synserve)")
	metricsOut := flag.String("metrics", "", `write a final pipeline-metrics snapshot as JSON to this file ("-" = stdout)`)
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}
	// The registry stays nil unless some sink wants it: every instrumented
	// path below no-ops on the nil registry's nil metrics.
	var reg *obs.Registry
	if *metricsOut != "" || *metricsEvery > 0 {
		reg = obs.NewRegistry()
	}
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()

	if flag.NArg() != 1 {
		log.Fatal("usage: synalyze [flags] capture.{pcap,spool}")
	}
	if *archiveOut != "" && *archiveOut == flag.Arg(0) {
		log.Fatalf("-archive %s would overwrite the input capture", *archiveOut)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Auto-detect the capture format by magic: flowlog spools start with
	// "SYNL", pcapng sections with 0x0A0D0D0A, anything else is treated as
	// classic pcap.
	br := bufio.NewReaderSize(f, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		log.Fatalf("reading %s: %v", flag.Arg(0), err)
	}
	isSpool := [4]byte(magic) == flowlog.Magic
	isNG := [4]byte(magic) == pcapng.Magic

	var pcapR *pcap.Reader
	var spoolR *flowlog.Reader
	var ngR *pcapng.Reader
	switch {
	case isSpool:
		spoolR, err = flowlog.NewReader(br)
		if err != nil {
			log.Fatal(err)
		}
		// The spool header records the telescope size; honor it unless the
		// operator overrides explicitly.
		if spoolR.TelescopeSize() > 0 && *telSize == 4096 {
			*telSize = spoolR.TelescopeSize()
		}
	case isNG:
		ngR, err = pcapng.NewReader(br)
		if err != nil {
			log.Fatal(err)
		}
	default:
		pcapR, err = pcap.NewReader(br)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Thresholds scale with the telescope size (shared with syningest so the
	// batch and live paths detect identical campaigns).
	cfg := core.ScaledConfig(*telSize)
	if *minDsts > 0 {
		cfg.MinDistinctDsts = *minDsts
	}

	// Write-on-detect: every closed flow is spooled into the archive from
	// the same goroutine that collects it (sequentially during ingest,
	// sharded at FlushAll), so no extra synchronization is needed. The
	// replay path has no enrichment registry, so the archive is origin-less.
	var aw *archive.Writer
	if *archiveOut != "" {
		var err error
		aw, err = archive.Create(*archiveOut, archive.WriterConfig{
			TelescopeSize: *telSize, Metrics: reg,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// With -workers > 1 the detector shards per source address: replay
	// parses and routes on this goroutine while detection runs on the
	// worker pool. Results are identical to the sequential detector (see
	// core.ShardedDetector); scans surface at FlushAll.
	var scans []*core.Scan
	collect := func(s *core.Scan) {
		scans = append(scans, s)
		if aw != nil {
			if err := aw.Add(s); err != nil {
				log.Fatal(err)
			}
		}
	}
	det := core.NewDetector(cfg, collect,
		core.WithWorkers(*workers), core.WithMetrics(reg))

	// The replay's own ingress filter mirrors the telescope naming so one
	// snapshot schema covers both the simulator and the replay path.
	mAccepted := reg.Counter("telescope.packets.accepted")
	mNotSYN := reg.Counter("telescope.drop.not_syn")
	mUnparsed := reg.Counter("telescope.drop.unparsed")
	mTruncated := reg.Counter("pcap.records.truncated")

	packetsPerPort := stats.NewCounter[uint16]()
	var total, parsed, syn, phase2 uint64
	// One Decoder and one Probe for the whole replay: Decode reuses the
	// probe's payload backing, so the frame loops below run allocation-free
	// (the detector copies anything it keeps past the call).
	var dec packet.Decoder
	var p packet.Probe
	ingest := func() {
		if p.IsSYN() {
			syn++
		} else {
			phase2++
		}
		mAccepted.Inc()
		packetsPerPort.Inc(p.DstPort)
		det.Ingest(&p)
	}
	// The replay ingress filter: a passive capture is SYN-only; a reactive
	// capture (-reactive) also carries the phase-two segments the responder
	// admitted, which the detector links into two-phase campaigns. SYN-ACK
	// backscatter stays dropped either way.
	admit := func() bool {
		if p.IsSYN() {
			return true
		}
		return *reactiveMode && p.IsTCP() && !p.IsSYNACK()
	}
	replaySpan := obs.StartSpan(reg.Histogram("replay.read_ns"))
	switch {
	case isSpool:
		for {
			if err := spoolR.Next(&p); err == io.EOF {
				break
			} else if err != nil {
				log.Fatal(err)
			}
			total++
			parsed++
			if admit() {
				ingest()
			} else {
				mNotSYN.Inc()
			}
		}
	case isNG:
		for {
			ts, data, _, err := ngR.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			total++
			if err := dec.Decode(data, &p); err != nil {
				mUnparsed.Inc()
				continue
			}
			parsed++
			if !admit() {
				mNotSYN.Inc()
				continue
			}
			p.Time = ts
			ingest()
		}
	default:
		for {
			rec, err := pcapR.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			total++
			if rec.Truncated() {
				mTruncated.Inc()
			}
			if err := dec.Decode(rec.Data, &p); err != nil {
				mUnparsed.Inc()
				continue
			}
			parsed++
			if !admit() {
				mNotSYN.Inc()
				continue
			}
			p.Time = rec.Time
			ingest()
		}
	}
	replaySpan.End()

	flushSpan := obs.StartSpan(reg.Histogram("replay.flush_ns"))
	det.FlushAll()
	flushSpan.End()

	if aw != nil {
		if err := aw.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("archived %d campaigns to %s", len(scans), *archiveOut)
	}

	qualified := 0
	toolHist := map[string]uint64{}
	var speeds []float64
	for _, s := range scans {
		if !s.Qualified {
			continue
		}
		qualified++
		toolHist[s.Tool.String()]++
		speeds = append(speeds, s.RatePPS)
	}

	fmt.Printf("records %d, parsed %d, SYN %d\n", total, parsed, syn)
	if *reactiveMode {
		var twoPhase int
		for _, s := range scans {
			if s.TwoPhase {
				twoPhase++
			}
		}
		fmt.Printf("phase-2 segments %d, two-phase campaigns %d\n", phase2, twoPhase)
	}
	fmt.Printf("flows closed %d, qualified campaigns %d\n\n", len(scans), qualified)

	report.Histogram(os.Stdout, "campaigns by tool", toolHist)
	fmt.Println()

	t := report.NewTable("port", "packets", "share")
	for _, kv := range packetsPerPort.TopK(*topN) {
		t.AddRow(fmt.Sprint(kv.Key), fmt.Sprint(kv.Count),
			report.Pct(float64(kv.Count)/float64(packetsPerPort.Total())))
	}
	fmt.Println("top ports by packets:")
	t.WriteTo(os.Stdout)

	if len(speeds) > 0 {
		fmt.Println()
		report.CDF(os.Stdout, "extrapolated campaign speed (pps)", stats.NewECDF(speeds))
	}

	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(reg.Snapshot(), *metricsOut); err != nil {
			log.Fatal(err)
		}
	}
}
