// Command syningest runs live campaign detection over a flowlog spool and
// appends every closed flow to a segment store — the continuously-growing,
// directory-backed archive that synserve can query while it is still being
// written.
//
// Where synalyze is the batch path (replay a finished capture, write one
// sealed archive, print the report), syningest is the daemon: it tails a
// spool as the telescope writes it, seals bounded segments as campaigns
// close, and publishes each through the store manifest so a concurrently
// running synserve discovers it within one -rescan interval, no restart. An
// optional background compactor merges runs of small sealed segments into
// larger ones, LSM-style, preserving the store's emit order byte for byte.
//
// Usage:
//
//	syntelescope -year 2020 -format spool -out capture.spool
//	syningest -dir store/ capture.spool                 # batch: ingest and exit
//	syningest -dir store/ -follow live.spool            # daemon: tail the spool
//	syningest -dir store/ -compact-now                  # one-shot compaction
//
//	synserve -addr localhost:8080 store/                # queries follow along
//
// Detection thresholds scale with the telescope size exactly as synalyze's
// do (core.ScaledConfig), so the live path and a later batch replay of the
// same capture detect identical campaigns. SIGINT/SIGTERM seals the open
// segment before exiting; a crash loses only the unsealed segment, whose
// records re-ingest from the spool.
package main

import (
	"bufio"
	"context"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/flowlog"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("syningest: ")

	dir := flag.String("dir", "", "segment store directory (required; created if missing)")
	telSize := flag.Int("telescope", 4096, "monitored address count (spool header wins unless overridden)")
	minDsts := flag.Int("min-dsts", 0, "campaign threshold on distinct destinations (0 = paper default scaled)")
	workers := flag.Int("workers", 1, "campaign-detector shards")
	segBytes := flag.Int64("segment-bytes", 4<<20, "seal the open segment at this on-disk size")
	segScans := flag.Int64("segment-scans", 0, "seal the open segment at this many campaigns (0 = default)")
	segAge := flag.Duration("segment-age", 0, "seal once the open segment spans this much record time (0 = off)")
	sealEvery := flag.Duration("seal-every", 30*time.Second, "wall-clock seal interval so quiet periods still publish (0 = off)")
	follow := flag.Bool("follow", false, "tail the spool: poll for new records at EOF instead of exiting")
	pollEvery := flag.Duration("poll", 200*time.Millisecond, "EOF poll interval in -follow mode")
	compactEvery := flag.Duration("compact-every", 0, "background compaction interval (0 = no compactor)")
	compactMin := flag.Int("compact-min", archive.DefaultCompactMinRun, "minimum run of small segments worth merging")
	compactMax := flag.Int64("compact-max-bytes", archive.DefaultCompactMaxInputBytes, "segments at or above this size are never merge inputs")
	compactNow := flag.Bool("compact-now", false, "drain all eligible compactions, then exit (no spool needed)")
	metricsOut := flag.String("metrics", "", `write a final metrics snapshot as JSON to this file ("-" = stdout)`)
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	if *dir == "" {
		log.Fatal("-dir is required")
	}
	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *compactNow {
		if flag.NArg() != 0 {
			log.Fatal("-compact-now takes no spool argument")
		}
		sw, err := archive.OpenSegmentDir(*dir, archive.SegmentConfig{Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		comp := archive.NewCompactor(sw, archive.CompactorConfig{
			MinRun: *compactMin, MaxInputBytes: *compactMax, Metrics: reg,
		})
		total := 0
		for {
			n, err := comp.CompactOnce()
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				break
			}
			total += n
		}
		if err := sw.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("compacted %d segments in %s", total, *dir)
		writeMetrics(reg, *metricsOut)
		return
	}

	if flag.NArg() != 1 {
		log.Fatal("usage: syningest -dir store [flags] capture.spool")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// In follow mode the spool reader never sees EOF while the daemon runs:
	// reads block-and-poll until new records land, so a record split across
	// two writes is simply waited out, and shutdown surfaces as a clean EOF.
	var src io.Reader = f
	if *follow {
		src = &tailReader{f: f, ctx: ctx, poll: *pollEvery}
	}
	spool, err := flowlog.NewReader(bufio.NewReaderSize(src, 1<<16))
	if err != nil {
		log.Fatal(err)
	}
	if spool.TelescopeSize() > 0 && *telSize == 4096 {
		*telSize = spool.TelescopeSize()
	}

	sw, err := archive.OpenSegmentDir(*dir, archive.SegmentConfig{
		TelescopeSize:   *telSize,
		Metrics:         reg,
		MaxSegmentBytes: *segBytes,
		MaxSegmentScans: uint64(*segScans),
		MaxSegmentAge:   int64(*segAge),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("store %s: %d segments at open, generation %d",
		*dir, len(sw.SealedSegments()), sw.Generation())

	var wg sync.WaitGroup
	if *sealEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(*sealEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := sw.Seal(); err != nil {
						log.Printf("seal: %v", err)
					}
				}
			}
		}()
	}
	if *compactEvery > 0 {
		comp := archive.NewCompactor(sw, archive.CompactorConfig{
			MinRun: *compactMin, MaxInputBytes: *compactMax, Metrics: reg,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp.Run(ctx, *compactEvery)
		}()
	}

	cfg := core.ScaledConfig(*telSize)
	if *minDsts > 0 {
		cfg.MinDistinctDsts = *minDsts
	}
	var nScans uint64
	collect := func(s *core.Scan) {
		nScans++
		if err := sw.Add(s); err != nil {
			log.Fatal(err)
		}
	}
	det := core.NewDetector(cfg, collect,
		core.WithWorkers(*workers), core.WithMetrics(reg))

	mAccepted := reg.Counter("telescope.packets.accepted")
	mNotSYN := reg.Counter("telescope.drop.not_syn")
	var total uint64
	var p packet.Probe
	for {
		if err := spool.Next(&p); err == io.EOF {
			break
		} else if err != nil {
			if ctx.Err() != nil {
				// Shutdown can truncate the tail read mid-record; everything
				// complete was already ingested.
				break
			}
			log.Fatal(err)
		}
		total++
		if !p.IsSYN() {
			mNotSYN.Inc()
			continue
		}
		mAccepted.Inc()
		det.Ingest(&p)
	}

	det.FlushAll()
	stop() // stops the seal/compact tickers
	wg.Wait()
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("ingested %d records, %d campaigns, %d segments, generation %d",
		total, nScans, len(sw.SealedSegments()), sw.Generation())
	writeMetrics(reg, *metricsOut)
}

func writeMetrics(reg *obs.Registry, path string) {
	if path == "" {
		return
	}
	if err := obs.WriteSnapshotFile(reg.Snapshot(), path); err != nil {
		log.Fatal(err)
	}
}

// tailReader turns EOF into wait-and-retry until ctx is done, so a spool
// still being written reads like an endless stream. The final EOF (after
// cancellation) is the reader's clean termination signal.
type tailReader struct {
	f    *os.File
	ctx  context.Context
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}
