package main

// Exec-based drain test: a following syningest daemon must treat SIGTERM as
// a graceful drain — finish what it read, seal the open segment, write the
// manifest, and exit 0 — so supervisors (and the synserve reading the same
// store) never see a torn store or a dirty exit. Run with -short to skip
// (it shells out to the Go toolchain).

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/syningest -> repo root
}

func TestFollowModeSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM delivery is POSIX-only")
	}
	dir := t.TempDir()
	syntelescope := buildTool(t, dir, "syntelescope")
	syningest := buildTool(t, dir, "syningest")

	spool := filepath.Join(dir, "capture.synl")
	out, err := exec.Command(syntelescope,
		"-format", "spool", "-year", "2021", "-seed", "5", "-scale", "0.0005",
		"-telescope", "2048", "-out", spool).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope: %v\n%s", err, out)
	}

	store := filepath.Join(dir, "store")
	cmd := exec.Command(syningest,
		"-dir", store, "-follow", "-seal-every", "100ms", "-poll", "20ms", spool)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Wait until the daemon has ingested and published at least one sealed
	// segment: the concurrent-reader view (exactly what synserve would do).
	deadline := time.Now().Add(30 * time.Second)
	var scans uint64
	for scans == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no sealed scans appeared in %s\nstderr:\n%s", store, stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
		cat, err := archive.OpenCatalog(store, archive.CatalogConfig{})
		if err != nil {
			continue // manifest not written yet
		}
		v := cat.View()
		scans = v.NumScans()
		v.Release()
		cat.Close()
	}

	// The daemon is mid-follow (blocked polling for more spool records).
	// SIGTERM must drain: clean EOF, final seal, manifest write, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("syningest exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("syningest did not exit within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "ingested") {
		t.Fatalf("missing final ingest summary in stderr:\n%s", stderr.String())
	}

	// The drained store is complete and self-consistent: every campaign the
	// daemon reported is queryable from the sealed segments.
	cat, err := archive.OpenCatalog(store, archive.CatalogConfig{})
	if err != nil {
		t.Fatalf("store unreadable after drain: %v", err)
	}
	defer cat.Close()
	v := cat.View()
	defer v.Release()
	if v.NumScans() < scans {
		t.Fatalf("drained store has %d scans, fewer than the %d already sealed pre-drain",
			v.NumScans(), scans)
	}
	if len(cat.Unreadable()) != 0 {
		t.Fatalf("drained store has unreadable segments: %v", cat.Unreadable())
	}
}
