// Command syntelescope simulates one measurement year of telescope traffic
// and writes the accepted capture to a pcap file (or just prints capture
// statistics when no output is given).
//
// Usage:
//
//	syntelescope -year 2020 -out capture.pcap
//	syntelescope -year 2024 -scale 0.001 -telescope 8192
//
// The produced pcap contains full Ethernet+IPv4+TCP frames with valid
// checksums and nanosecond timestamps; synalyze (or any pcap tool) can read
// it back.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/synscan/synscan/internal/flowlog"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/pcap"
	"github.com/synscan/synscan/internal/pcapng"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("syntelescope: ")

	year := flag.Int("year", 2020, "measurement year (2015-2024)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.002, "volume scale relative to the paper")
	telSize := flag.Int("telescope", 4096, "monitored address count")
	out := flag.String("out", "", "output path (omit for stats only)")
	format := flag.String("format", "pcap", "output format: pcap, pcapng, or spool (compact flowlog)")
	maxPackets := flag.Uint64("max-packets", 0, "stop after this many accepted packets (0 = all)")
	reactiveMode := flag.Bool("reactive", false, "answer SYNs with synthesized SYN-ACKs (Spoki-style): two-phase scanners return with handshakes and payloads")
	respondRate := flag.Float64("respond-rate", 1000, "reactive: SYN-ACKs per second cap (0 = unlimited)")
	respondPorts := flag.String("respond-ports", "", "reactive: comma-separated port allowlist (empty = all ports)")
	metricsOut := flag.String("metrics", "", `write a final pipeline-metrics snapshot as JSON to this file ("-" = stdout)`)
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if *format != "pcap" && *format != "pcapng" && *format != "spool" {
		log.Fatalf("unknown format %q (want pcap, pcapng or spool)", *format)
	}

	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}
	var reg *obs.Registry
	if *metricsOut != "" || *metricsEvery > 0 {
		reg = obs.NewRegistry()
	}
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()

	s, err := workload.NewScenario(workload.Config{
		Year: *year, Seed: *seed, Scale: *scale, TelescopeSize: *telSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Telescope.SetMetrics(reg)

	var pcapW *pcap.Writer
	var ngW *pcapng.Writer
	var spoolW *flowlog.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		switch *format {
		case "pcap":
			pcapW, err = pcap.NewWriter(f)
		case "pcapng":
			ngW, err = pcapng.NewWriter(f, uint16(pcap.LinkTypeEthernet))
		case "spool":
			spoolW, err = flowlog.NewWriter(f, s.Telescope.Size())
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	var accepted uint64
	frame := make([]byte, 0, packet.FrameLen)
	write := func(p *packet.Probe) {
		if *maxPackets > 0 && accepted >= *maxPackets {
			return
		}
		accepted++
		switch {
		case pcapW != nil:
			frame = p.AppendFrame(frame[:0])
			if err := pcapW.WritePacket(p.Time, frame); err != nil {
				log.Fatal(err)
			}
		case ngW != nil:
			frame = p.AppendFrame(frame[:0])
			if err := ngW.WritePacket(p.Time, frame); err != nil {
				log.Fatal(err)
			}
		case spoolW != nil:
			if err := spoolW.Write(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	var sum workload.Summary
	var respStats reactive.Stats
	genSpan := obs.StartSpan(reg.Histogram("generate.run_ns"))
	if *reactiveMode {
		pol := reactive.Policy{RatePerSec: *respondRate, Seed: *seed}
		if *respondPorts != "" {
			for _, fld := range strings.Split(*respondPorts, ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(fld), 10, 16)
				if err != nil {
					log.Fatalf("invalid -respond-ports entry %q", fld)
				}
				pol.Ports = append(pol.Ports, uint16(v))
			}
		}
		rt := reactive.New(s.Telescope, pol)
		rt.SetMetrics(reg)
		sum = s.RunReactive(rt, func(p *packet.Probe, d reactive.Disposition) {
			if d.Reason == telescope.Accepted {
				write(p)
			}
		})
		respStats = rt.Stats()
	} else {
		sum = s.Run(func(p *packet.Probe) {
			if s.Telescope.Observe(p) != telescope.Accepted {
				return
			}
			write(p)
		})
	}
	genSpan.End()
	if pcapW != nil {
		if err := pcapW.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	if ngW != nil {
		if err := ngW.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	if spoolW != nil {
		if err := spoolW.Flush(); err != nil {
			log.Fatal(err)
		}
	}

	st := s.Telescope.Stats()
	fmt.Printf("year %d: window %d days, telescope %d addresses\n",
		*year, s.Profile.Days, s.Telescope.Size())
	fmt.Printf("generated  %12d probes (%d campaigns, %d background sources)\n",
		sum.Probes, sum.Campaigns, sum.BackgroundSources)
	fmt.Printf("accepted   %12d\n", accepted)
	fmt.Printf("dropped    %12d not-monitored, %d policy, %d backscatter, %d non-tcp, %d outage\n",
		st.NotMonitored, st.Policy, st.NotSYN, st.NotTCP, st.Outage)
	if *reactiveMode {
		fmt.Printf("reactive   %12d syn-acks, %d phase-2 segments (%d payloads), %d two-phase campaigns\n",
			respStats.Responded, respStats.Phase2, respStats.Payloads, sum.TwoPhaseCampaigns)
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(reg.Snapshot(), *metricsOut); err != nil {
			log.Fatal(err)
		}
	}
}
