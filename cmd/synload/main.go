// Command synload drives a client fleet against synserve and gates the
// result on service-level objectives. It is the load harness behind the
// repo's production-hardening work: the CI load-smoke step and BENCH
// trajectory both run it (or its internal/loadgen engine) to prove the
// server stays within latency and error budgets under concurrency.
//
// Two targeting modes:
//
//   - -addr http://host:port points the fleet at an already-running server.
//   - Without -addr, synload self-serves: it writes a deterministic fixture
//     archive (-fixture scans, -seed), builds ./cmd/synserve (or uses
//     -synserve BIN), starts it on a loopback port, runs the fleet against
//     it, and shuts it down. -serve-args appends raw flags to the server
//     command line (e.g. -serve-args="-max-inflight 4" to force overload).
//
// The mix (-mix standard|hot) replays production-shaped traffic: cached and
// cache-busting reads, pushdown-pruned and full-scan POST /v1/query
// aggregations, legacy table endpoints ("standard"), or a single identical
// expensive query from every client ("hot", the singleflight worst case).
//
// SLO flags turn the run into a pass/fail gate; any violation exits 1:
//
//	synload -clients 1000 -requests 20000 \
//	  -slo-p99 2s -slo-error-rate 0.01 -slo-reject-share 0.5
//
// -out writes the full loadgen.Result as JSON. After a self-served run the
// server's /v1/stats metrics are fetched and the hardening counters
// (admission, singleflight, streaming) are reported alongside the client
// view.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/synscan/synscan/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synload: ")

	addr := flag.String("addr", "", "target base URL (e.g. http://127.0.0.1:8080); empty = self-serve a fixture")
	fixture := flag.Int("fixture", 20000, "scans in the self-served fixture archive")
	store := flag.String("store", "", "serve this existing archive/store instead of generating a fixture")
	synserve := flag.String("synserve", "", "prebuilt synserve binary (default: go build ./cmd/synserve)")
	serveArgs := flag.String("serve-args", "", "extra flags appended to the synserve command line")
	clients := flag.Int("clients", 1000, "concurrent clients in the fleet")
	requests := flag.Uint64("requests", 0, "total request budget (0 = run for -duration)")
	duration := flag.Duration("duration", 10*time.Second, "wall deadline when -requests is 0")
	mixName := flag.String("mix", "standard", "request mix: standard or hot")
	seed := flag.Uint64("seed", 1, "deterministic seed for fixture and per-client request streams")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	out := flag.String("out", "", "write the result as JSON to this file")
	sloP99 := flag.Duration("slo-p99", 0, "fail if p99 latency exceeds this (0 = unchecked)")
	sloErr := flag.Float64("slo-error-rate", 0, "fail if (transport errors + 5xx)/requests exceeds this (0 = unchecked)")
	sloRej := flag.Float64("slo-reject-share", 0, "fail if 429s/requests exceeds this (0 = unchecked)")
	sloRPS := flag.Float64("slo-throughput", 0, "fail if requests/second falls below this (0 = unchecked)")
	flag.Parse()

	var mix []loadgen.Request
	switch *mixName {
	case "standard":
		mix = loadgen.StandardMix()
	case "hot":
		mix = loadgen.HotMix()
	default:
		log.Fatalf("unknown -mix %q (want standard or hot)", *mixName)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *addr
	var statsURL string
	if base == "" {
		srv, err := startServer(ctx, *store, *fixture, *seed, *synserve, *serveArgs)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.stop()
		base = srv.base
		statsURL = base + "/v1/stats"
		log.Printf("self-serving %s at %s", srv.target, base)
	}

	reqs := *requests
	dur := time.Duration(0)
	if reqs == 0 {
		dur = *duration
	}
	log.Printf("running %d clients, mix=%s, requests=%d duration=%v seed=%d",
		*clients, *mixName, reqs, dur, *seed)

	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:  base,
		Clients:  *clients,
		Requests: reqs,
		Duration: dur,
		Mix:      mix,
		Timeout:  *timeout,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests   %d in %.2fs (%.1f rps)\n", res.Requests, res.Duration, res.Throughput)
	fmt.Printf("latency    p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	fmt.Printf("status     %v\n", res.Status)
	fmt.Printf("rejected   %d (%.2f%%)  errors %d (%.2f%%)  retry-after seen: %v\n",
		res.Rejected, 100*res.RejectShare(), res.Errors, 100*res.ErrorRate(), res.RetryAfterSeen)
	for name, n := range res.ByName {
		fmt.Printf("  mix %-16s %d\n", name, n)
	}
	if statsURL != "" {
		reportServerCounters(statsURL)
	}

	if *out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}

	slo := loadgen.SLO{
		MaxP99:         *sloP99,
		MaxErrorRate:   *sloErr,
		MaxRejectShare: *sloRej,
		MinThroughput:  *sloRPS,
	}
	if err := res.Check(slo); err != nil {
		log.Printf("SLO FAIL:\n%v", err)
		os.Exit(1)
	}
	if slo != (loadgen.SLO{}) {
		log.Print("SLO PASS")
	}
}

// child is a self-served synserve process.
type child struct {
	cmd    *exec.Cmd
	base   string
	target string
}

func (c *child) stop() {
	c.cmd.Process.Signal(os.Interrupt)
	c.cmd.Wait()
}

// startServer builds (if needed) and launches synserve over the target
// store — an existing path or a freshly written fixture archive — and waits
// for it to report its listen address.
func startServer(ctx context.Context, store string, fixture int, seed uint64, bin, extraArgs string) (*child, error) {
	tmp, err := os.MkdirTemp("", "synload")
	if err != nil {
		return nil, err
	}
	// tmp holds the fixture and possibly the binary; it leaks only until
	// process exit on early error, and the OS tempdir reaps it.

	target := store
	if target == "" {
		target = filepath.Join(tmp, "fixture.syna")
		if err := loadgen.WriteFixtureArchive(target, fixture, seed); err != nil {
			return nil, fmt.Errorf("writing fixture: %w", err)
		}
		log.Printf("wrote fixture archive: %d scans", fixture)
	}
	if bin == "" {
		bin = filepath.Join(tmp, "synserve")
		if out, err := exec.Command("go", "build", "-o", bin, "./cmd/synserve").CombinedOutput(); err != nil {
			return nil, fmt.Errorf("building synserve (run from the repo root or pass -synserve): %v\n%s", err, out)
		}
	}

	args := []string{"-addr", "127.0.0.1:0"}
	if extraArgs != "" {
		args = append(args, strings.Fields(extraArgs)...)
	}
	args = append(args, target)
	cmd := exec.CommandContext(ctx, bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, "serving on ") {
			base = strings.TrimSpace(line[strings.Index(line, "serving on ")+len("serving on "):])
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("synserve never reported its address")
	}
	go io.Copy(io.Discard, stderr)
	return &child{cmd: cmd, base: base, target: target}, nil
}

// reportServerCounters fetches /v1/stats and prints the server.* hardening
// family — the server-side view of what the fleet just did.
func reportServerCounters(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Printf("fetching stats: %v", err)
		return
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics struct {
			Counters map[string]uint64 `json:"counters"`
			Gauges   map[string]int64  `json:"gauges"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Printf("decoding stats: %v", err)
		return
	}
	c := stats.Metrics.Counters
	fmt.Printf("server     admitted %d  rejected %d  sf-leaders %d  sf-shared %d  streamed %d  cache-hits %d\n",
		c["server.admission.admitted"], c["server.admission.rejected"],
		c["server.singleflight.leaders"], c["server.singleflight.shared"],
		c["server.stream.responses"], c["synserve.cache.hits"])
}
