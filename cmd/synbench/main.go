// Command synbench is the pinned benchmark runner behind the committed
// BENCH_<n>.json perf trajectory. It measures the numbers the ROADMAP names
// as the hot-path baseline — probe ingest throughput, archive scan
// bandwidth, segment discovery latency, synserve query latency, and the
// query engine's pushdown-vs-materialized profile — with fixed seeds and
// workload sizes so successive PRs produce comparable records.
//
// Usage:
//
//	go run ./cmd/synbench -out BENCH_9.json        # full run (commit this)
//	go run ./cmd/synbench -quick -out -            # CI smoke: small sizes
//
// The synserve measurement execs a real server binary so the number includes
// HTTP, JSON encoding, and the result cache. By default the binary is built
// from ./cmd/synserve (run from the repo root); -synserve points at a
// prebuilt one.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/synscan/synscan/internal/alloctest"
	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/loadgen"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// record is the BENCH_<n>.json schema. Sizes are recorded alongside the
// numbers so a record is self-describing even if the defaults change later.
type record struct {
	Bench     int    `json:"bench"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Quick     bool   `json:"quick,omitempty"`

	IngestProbes    int     `json:"ingest_probes"`
	ProbeIngestPPS  float64 `json:"probe_ingest_pps"`
	ReactiveProbes  uint64  `json:"reactive_probes"`
	OneWayPPS       float64 `json:"oneway_pipeline_pps"`
	ReactivePPS     float64 `json:"reactive_pipeline_pps"`
	ReactiveP2Share float64 `json:"reactive_phase2_share"`
	ArchiveScans    int     `json:"archive_scans"`
	ArchiveBytes    int64   `json:"archive_bytes"`
	ArchiveScanMBps float64 `json:"archive_scan_mb_per_s"`

	// Allocation discipline on the gated hot paths, measured the same way the
	// internal/alloctest budgets are enforced (warm state, GOMAXPROCS=1):
	// steady-state heap allocations per frame decoded, per probe absorbed
	// through the detector's batch entry, and per pooled archive block read.
	AllocDecodePerFrame     float64 `json:"alloc_decode_per_frame"`
	AllocAbsorbPerProbe     float64 `json:"alloc_detector_absorb_per_probe"`
	AllocBlockReadPerBlock  float64 `json:"alloc_archive_block_read_per_block"`
	AllocBlockReadBytesPerB float64 `json:"alloc_archive_block_read_bytes"`

	DiscoveryRounds int     `json:"discovery_rounds"`
	DiscoveryP50Ms  float64 `json:"segment_discovery_p50_ms"`
	DiscoveryMaxMs  float64 `json:"segment_discovery_max_ms"`

	ServeRequests int     `json:"serve_requests"`
	ServeP50Ms    float64 `json:"synserve_p50_ms"`
	ServeP99Ms    float64 `json:"synserve_p99_ms"`

	// Load harness: a concurrent client fleet replaying the standard mix
	// against a real synserve (internal/loadgen), the production-hardening
	// headline numbers.
	LoadClients            int     `json:"load_clients"`
	LoadRequests           uint64  `json:"load_requests"`
	LoadRPS                float64 `json:"load_rps"`
	LoadP50Ms              float64 `json:"load_p50_ms"`
	LoadP99Ms              float64 `json:"load_p99_ms"`
	Load429Share           float64 `json:"load_429_share"`
	LoadErrors             uint64  `json:"load_errors"`
	LoadSingleflightShared uint64  `json:"load_singleflight_shared"`

	QueryScans int          `json:"query_scans"`
	Queries    []queryBench `json:"queries"`
}

// queryBench compares one engine query executed with zone-map predicate
// pushdown against the materialize-then-aggregate baseline (read the whole
// archive into a scan slice, then aggregate in memory) over the same file.
type queryBench struct {
	Name            string  `json:"name"`
	PushdownMs      float64 `json:"pushdown_ms"`
	PushdownAllocMB float64 `json:"pushdown_alloc_mb"`
	MaterialMs      float64 `json:"materialized_ms"`
	MaterialAllocMB float64 `json:"materialized_alloc_mb"`
	Speedup         float64 `json:"speedup"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("synbench: ")

	out := flag.String("out", "-", `output path for the JSON record ("-" = stdout)`)
	benchN := flag.Int("n", 10, "benchmark sequence number recorded in the output")
	quick := flag.Bool("quick", false, "CI smoke mode: ~10x smaller workloads, not comparable to full runs")
	servePath := flag.String("synserve", "", "prebuilt synserve binary (default: go build ./cmd/synserve)")
	flag.Parse()

	rec := record{
		Bench:     *benchN,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Quick:     *quick,
	}
	nProbes, nScans, nRounds, nReqs := 2_000_000, 200_000, 20, 1000
	if *quick {
		nProbes, nScans, nRounds, nReqs = 200_000, 20_000, 5, 100
	}

	tmp, err := os.MkdirTemp("", "synbench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	rec.IngestProbes = nProbes
	rec.ProbeIngestPPS = benchIngest(nProbes)
	log.Printf("probe ingest: %.0f pkts/s", rec.ProbeIngestPPS)

	reactiveScale := 0.002
	if *quick {
		reactiveScale = 0.0003
	}
	rec.ReactiveProbes, rec.OneWayPPS, rec.ReactivePPS, rec.ReactiveP2Share = benchReactive(reactiveScale)
	log.Printf("pipeline: one-way %.0f pkts/s, reactive %.0f pkts/s (%.2f%% phase-2) over %d probes",
		rec.OneWayPPS, rec.ReactivePPS, 100*rec.ReactiveP2Share, rec.ReactiveProbes)

	archivePath := filepath.Join(tmp, "bench.syna")
	scans := makeScans(nScans)
	rec.ArchiveScans = nScans
	rec.ArchiveBytes, rec.ArchiveScanMBps = benchArchiveScan(archivePath, scans)
	log.Printf("archive scan: %.1f MB/s over %d bytes", rec.ArchiveScanMBps, rec.ArchiveBytes)

	benchAllocs(&rec, archivePath)
	log.Printf("allocs/op: decode %.4f/frame, absorb %.4f/probe, block read %.2f (%.0f B)",
		rec.AllocDecodePerFrame, rec.AllocAbsorbPerProbe,
		rec.AllocBlockReadPerBlock, rec.AllocBlockReadBytesPerB)

	rec.DiscoveryRounds = nRounds
	rec.DiscoveryP50Ms, rec.DiscoveryMaxMs = benchDiscovery(filepath.Join(tmp, "store"), scans, nRounds)
	log.Printf("segment discovery: p50 %.3f ms, max %.3f ms", rec.DiscoveryP50Ms, rec.DiscoveryMaxMs)

	rec.ServeRequests = nReqs
	rec.ServeP50Ms, rec.ServeP99Ms = benchServe(*servePath, tmp, archivePath, nReqs)
	log.Printf("synserve: p50 %.3f ms, p99 %.3f ms over %d requests", rec.ServeP50Ms, rec.ServeP99Ms, nReqs)

	loadClients, loadReqs := 1000, uint64(20000)
	if *quick {
		loadClients, loadReqs = 200, 4000
	}
	rec.LoadClients, rec.LoadRequests = loadClients, loadReqs
	benchLoad(&rec, *servePath, tmp, archivePath, loadClients, loadReqs)
	log.Printf("load %d clients: %.0f rps, p50 %.2f ms, p99 %.2f ms, 429 share %.4f, sf-shared %d",
		loadClients, rec.LoadRPS, rec.LoadP50Ms, rec.LoadP99Ms, rec.Load429Share, rec.LoadSingleflightShared)

	rec.QueryScans = nScans
	rec.Queries = benchQueries(filepath.Join(tmp, "query.syna"), scans)
	for _, qb := range rec.Queries {
		log.Printf("query %s: pushdown %.3f ms / %.2f MB alloc, materialized %.3f ms / %.2f MB alloc (%.2fx)",
			qb.Name, qb.PushdownMs, qb.PushdownAllocMB, qb.MaterialMs, qb.MaterialAllocMB, qb.Speedup)
	}

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// benchIngest feeds a deterministic pre-built probe stream through the
// sequential detector and reports the best-of-3 packets-per-second rate.
// The stream mirrors bench_test.go's ablation shape: many sources, bursty
// inter-arrival times, periodic quiet gaps that exercise expiry.
func benchIngest(n int) float64 {
	const sources = 16384
	r := rng.New(3)
	probers := make([]tools.Prober, sources)
	for i := range probers {
		probers[i] = tools.NewMasscan(uint32(i+1), r.DeriveN("s", uint64(i)))
	}
	stream := make([]packet.Probe, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := probers[i%sources].Probe(uint32(i), 443)
		tm += int64(r.Intn(10)) * int64(time.Millisecond)
		if i%50000 == 0 && i > 0 {
			tm += 2 * int64(time.Hour)
		}
		p.Time = tm
		stream[i] = p
	}

	best := math.MaxFloat64
	for iter := 0; iter < 3; iter++ {
		d := core.NewDetector(core.Config{TelescopeSize: 65536}, func(*core.Scan) {})
		t0 := time.Now()
		for i := range stream {
			d.Ingest(&stream[i])
		}
		d.FlushAll()
		if el := time.Since(t0).Seconds(); el < best {
			best = el
		}
	}
	return float64(n) / best
}

// benchReactive replays one seeded scenario year through the full pipeline
// twice — passive one-way capture vs the reactive responder with its
// phase-two follow-up traffic — and reports the sustained packets-per-second
// of each, plus the share of reactive traffic that was second-phase. The
// comparison quantifies what answering SYNs costs the ingest path: the
// responder's state table and the extra handshake/payload segments
// (roughly doubling the per-campaign packet budget for two-phase scanners).
func benchReactive(scale float64) (probes uint64, onewayPPS, reactivePPS, p2Share float64) {
	mk := func() *workload.Scenario {
		s, err := workload.NewScenario(workload.Config{
			Year: 2021, Seed: 5, Scale: scale, TelescopeSize: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	bestOneway := math.MaxFloat64
	for iter := 0; iter < 2; iter++ {
		s := mk()
		det := core.NewDetector(s.DetectorConfig, func(*core.Scan) {})
		var n uint64
		t0 := time.Now()
		s.Run(func(p *packet.Probe) {
			n++
			if s.Telescope.Observe(p) != telescope.Accepted {
				return
			}
			det.Ingest(p)
		})
		det.FlushAll()
		if el := time.Since(t0).Seconds() / float64(n); el < bestOneway {
			bestOneway = el
		}
	}

	bestReactive := math.MaxFloat64
	for iter := 0; iter < 2; iter++ {
		s := mk()
		rt := reactive.New(s.Telescope, reactive.DefaultPolicy(5))
		det := core.NewDetector(s.DetectorConfig, func(*core.Scan) {})
		var n uint64
		t0 := time.Now()
		sum := s.RunReactive(rt, func(p *packet.Probe, d reactive.Disposition) {
			n++
			if d.Reason != telescope.Accepted {
				return
			}
			det.Ingest(p)
		})
		det.FlushAll()
		if el := time.Since(t0).Seconds() / float64(n); el < bestReactive {
			bestReactive = el
		}
		probes = n
		p2Share = float64(sum.Phase2Probes) / float64(n)
	}
	return probes, 1 / bestOneway, 1 / bestReactive, p2Share
}

// benchAllocs measures the steady-state allocation rates of the three gated
// hot paths — frame decode, detector batch absorb, pooled archive block read
// — with internal/alloctest's discipline (warm call first, GOMAXPROCS=1), so
// the BENCH record carries the same numbers the test budgets enforce.
func benchAllocs(rec *record, archivePath string) {
	// Frame decode: one reusable Decoder, caller-owned probe.
	r := rng.New(9)
	pr := tools.NewMasscan(1, r)
	frames := make([][]byte, 1024)
	for i := range frames {
		p := pr.Probe(uint32(i), 443)
		frames[i] = p.AppendFrame(nil)
	}
	var dec packet.Decoder
	var p packet.Probe
	allocs, _ := alloctest.Measure(100, func() {
		for _, f := range frames {
			if err := dec.Decode(f, &p); err != nil {
				log.Fatal(err)
			}
		}
	})
	rec.AllocDecodePerFrame = allocs / float64(len(frames))

	// Detector absorb: warm flows and resident destination/port sets, the
	// regime a long-running telescope spends almost all its time in.
	const sources, perSource = 32, 64
	stream := make([]packet.Probe, 0, sources*perSource)
	for s := 0; s < sources; s++ {
		for i := 0; i < perSource; i++ {
			stream = append(stream, packet.Probe{
				Time:    int64(s*perSource+i) * int64(time.Millisecond),
				Src:     uint32(s + 1),
				Dst:     uint32(0x0a000000 + i%48),
				DstPort: uint16(20 + i%8),
				Seq:     uint32(i) * 977,
				Flags:   packet.FlagSYN,
			})
		}
	}
	d := core.NewDetector(core.Config{TelescopeSize: 65536}, func(*core.Scan) {})
	allocs, _ = alloctest.Measure(100, func() { d.IngestBatch(stream) })
	rec.AllocAbsorbPerProbe = allocs / float64(len(stream))

	// Pooled block read over the archive the scan benchmark just wrote.
	rd, err := archive.Open(archivePath)
	if err != nil {
		log.Fatal(err)
	}
	defer rd.Close()
	blocks := rd.NumBlocks()
	visit := func([]byte) error { return nil }
	i := 0
	rec.AllocBlockReadPerBlock, rec.AllocBlockReadBytesPerB = alloctest.Measure(1000, func() {
		if err := rd.RawBlock(i%blocks, visit); err != nil {
			log.Fatal(err)
		}
		i++
	})
}

// makeScans builds n deterministic closed flows spread over several years
// and ports, so the archive under test has realistic zone-map diversity.
func makeScans(n int) []*core.Scan {
	r := rng.New(7)
	ports := []uint16{22, 23, 80, 443, 445, 3389, 5060, 8080}
	out := make([]*core.Scan, n)
	for i := 0; i < n; i++ {
		year := 2015 + i%10
		start := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			int64(r.Intn(300*24))*int64(time.Hour)
		sc := &core.Scan{
			Src:          uint32(r.Intn(1 << 30)),
			Start:        start,
			End:          start + int64(1+r.Intn(120))*int64(time.Minute),
			Packets:      uint64(50 + r.Intn(5000)),
			DistinctDsts: 20 + r.Intn(1000),
			Ports:        []uint16{ports[i%len(ports)]},
			Tool:         tools.ToolZMap,
			Qualified:    i%3 != 0,
			RatePPS:      float64(100 + r.Intn(100000)),
			Coverage:     float64(r.Intn(1000)) / 1000,
		}
		out[i] = sc
	}
	return out
}

// benchArchiveScan writes the scans as one sealed archive and measures the
// best-of-3 full-file scan bandwidth (file bytes over wall time, nil filter
// so every block decompresses and decodes).
func benchArchiveScan(path string, scans []*core.Scan) (int64, float64) {
	w, err := archive.Create(path, archive.WriterConfig{TelescopeSize: 65536})
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range scans {
		if err := w.Add(sc); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}

	rd, err := archive.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rd.Close()
	best := math.MaxFloat64
	for iter := 0; iter < 3; iter++ {
		var n uint64
		t0 := time.Now()
		err := rd.Scans(archive.Filter{}, func(sc *core.Scan, _ enrich.Origin) { n++ })
		if err != nil {
			log.Fatal(err)
		}
		if n != uint64(len(scans)) {
			log.Fatalf("archive scan returned %d of %d scans", n, len(scans))
		}
		if el := time.Since(t0).Seconds(); el < best {
			best = el
		}
	}
	return fi.Size(), float64(fi.Size()) / (1 << 20) / best
}

// benchDiscovery seals one segment per round into a fresh store and times
// how long the serving-side catalog takes to surface it via Refresh — the
// latency a running synserve adds on top of its rescan interval.
func benchDiscovery(dir string, scans []*core.Scan, rounds int) (p50, max float64) {
	sw, err := archive.OpenSegmentDir(dir, archive.SegmentConfig{TelescopeSize: 65536})
	if err != nil {
		log.Fatal(err)
	}
	defer sw.Close()
	cat, err := archive.OpenCatalog(dir, archive.CatalogConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer cat.Close()

	perRound := len(scans) / rounds
	if perRound == 0 {
		perRound = 1
	}
	lat := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		for _, sc := range scans[i*perRound : (i+1)*perRound] {
			if err := sw.Add(sc); err != nil {
				log.Fatal(err)
			}
		}
		if err := sw.Seal(); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		changed, err := cat.Refresh()
		if err != nil {
			log.Fatal(err)
		}
		if !changed {
			log.Fatalf("round %d: refresh saw no new segment", i)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	sort.Float64s(lat)
	return lat[len(lat)/2], lat[len(lat)-1]
}

// benchQueries writes the benchmark scans to a time-sorted archive (blocks
// then carry tight year zone maps, the layout a per-year simulation or a
// compacted store produces) and compares three engine queries — a pruned
// filter, a grouped top-k, and a full-decade quantile — executed with
// predicate pushdown against the materialize-then-aggregate baseline.
func benchQueries(path string, scans []*core.Scan) []queryBench {
	sorted := make([]*core.Scan, len(scans))
	copy(sorted, scans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	w, err := archive.Create(path, archive.WriterConfig{TelescopeSize: 65536})
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range sorted {
		if err := w.Add(sc); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	rd, err := archive.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rd.Close()

	mk := func(b *query.Builder) *query.Query {
		q, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	cases := []struct {
		name string
		q    *query.Query
	}{
		{"filter_year_port", mk(query.NewBuilder().Years(2020).Ports(443).Count())},
		{"group_tool_topk_port", mk(query.NewBuilder().Qualified(true).
			GroupBy(query.FieldTool).Count().TopK(query.FieldPort, 10))},
		{"quantile_rate_decade", mk(query.NewBuilder().
			Quantiles(query.FieldRate, 0.5, 0.9, 0.99))},
	}

	ctx := context.Background()
	out := make([]queryBench, 0, len(cases))
	for _, c := range cases {
		qb := queryBench{Name: c.name}
		qb.PushdownMs, qb.PushdownAllocMB = measure(func() {
			if _, err := query.Run(ctx, c.q, query.ReaderSource{R: rd}); err != nil {
				log.Fatal(err)
			}
		})
		qb.MaterialMs, qb.MaterialAllocMB = measure(func() {
			all := make([]*core.Scan, 0, 1024)
			err := rd.Scans(archive.Filter{}, func(sc *core.Scan, _ enrich.Origin) {
				all = append(all, sc)
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := query.Run(ctx, c.q, query.SliceSource{Scans: all}); err != nil {
				log.Fatal(err)
			}
		})
		qb.Speedup = qb.MaterialMs / qb.PushdownMs
		out = append(out, qb)
	}
	return out
}

// measure reports f's best-of-3 wall time (ms) and the heap allocated by a
// single run (MB).
func measure(f func()) (ms, allocMB float64) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	allocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
	best := math.MaxFloat64
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		f()
		if el := time.Since(t0).Seconds(); el < best {
			best = el
		}
	}
	return best * 1000, allocMB
}

// benchServe starts a real synserve over the benchmark archive and measures
// per-request latency across a fixed mix of endpoints (scans with filters,
// table aggregations, stats), warm cache included — the steady-state profile
// of a dashboard polling the service.
func benchServe(bin, tmp, archivePath string, reqs int) (p50, p99 float64) {
	base, stop := startSynserve(bin, tmp, archivePath)
	defer stop()

	queries := []string{
		"/v1/scans?limit=100",
		"/v1/scans?year=2020&limit=100",
		"/v1/scans?port=443&limit=100",
		"/v1/scans?tool=zmap&qualified=true&limit=100",
		"/v1/tables/ports?top=10",
		"/v1/tables/tools",
		"/v1/tables/ports?year=2018&top=20",
		"/v1/stats",
	}
	get := func(q string) {
		resp, err := http.Get(base + q)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s: %d", q, resp.StatusCode)
		}
	}
	for _, q := range queries { // warm the result cache
		get(q)
	}
	lat := make([]float64, reqs)
	for i := 0; i < reqs; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		get(q)
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
	}
	sort.Float64s(lat)
	return lat[reqs/2], lat[reqs*99/100]
}

// startSynserve builds (when bin is empty and not yet built into tmp) and
// launches a real synserve over the archive, returning its base URL and a
// stop function that drains it with SIGINT.
func startSynserve(bin, tmp, archivePath string) (base string, stop func()) {
	if bin == "" {
		bin = filepath.Join(tmp, "synserve")
		if _, err := os.Stat(bin); err != nil {
			if out, err := exec.Command("go", "build", "-o", bin, "./cmd/synserve").CombinedOutput(); err != nil {
				log.Fatalf("building synserve (run from the repo root or pass -synserve): %v\n%s", err, out)
			}
		}
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", archivePath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, "serving on ") {
			base = strings.TrimSpace(line[strings.Index(line, "serving on ")+len("serving on "):])
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		log.Fatal("synserve never reported its address")
	}
	go io.Copy(io.Discard, stderr)
	return base, func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}
}

// benchLoad runs the internal/loadgen client fleet against a freshly
// started synserve (its own process, so the hardening counters below are
// this run's alone) and records throughput, exact latency quantiles, the
// 429 share under the default admission bound, and the server's
// singleflight collapse count.
func benchLoad(rec *record, bin, tmp, archivePath string, clients int, reqs uint64) {
	base, stop := startSynserve(bin, tmp, archivePath)
	defer stop()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  base,
		Clients:  clients,
		Requests: reqs,
		Mix:      loadgen.StandardMix(),
		Timeout:  30 * time.Second,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec.LoadRPS = res.Throughput
	rec.LoadP50Ms = res.P50Ms
	rec.LoadP99Ms = res.P99Ms
	rec.Load429Share = res.RejectShare()
	rec.LoadErrors = res.Errors
	if res.Errors > 0 {
		log.Printf("load: %d errors (statuses %v)", res.Errors, res.Status)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	rec.LoadSingleflightShared = stats.Metrics.Counters["server.singleflight.shared"]
}
