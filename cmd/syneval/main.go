// Command syneval regenerates every table and figure of the paper's
// evaluation from the calibrated simulation: Table 1 and 2, Figures 1–10,
// and the §5/§6 scalar findings. The output is the text form recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	syneval                       # full evaluation at the default scale
//	syneval -scale 0.0005 -quick  # fast smoke evaluation
//	syneval -only table1,fig2     # selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/collab"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/report"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("syneval: ")

	seed := flag.Uint64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 0.002, "volume scale relative to the paper")
	telSize := flag.Int("telescope", 4096, "monitored address count")
	workers := flag.Int("workers", 1, "campaign-detector shards per year; >1 runs detection on that many goroutines")
	archiveIn := flag.String("archive", "", "read detected campaigns from this archive instead of re-simulating (scan-level experiments only)")
	archiveOut := flag.String("archive-out", "", "persist the simulated decade's detected campaigns (with origins) to this archive file")
	only := flag.String("only", "", "comma-separated experiment list (table1,table2,fig1..fig10,sec51..sec64,bias,blockable,blocklist,collab,vantage); empty = all")
	jsonOut := flag.String("json", "", "write the complete evaluation as JSON to this path (skips the text report)")
	csvDir := flag.String("csv", "", "write the evaluation's series as CSV files into this directory (skips the text report)")
	mdOut := flag.String("markdown", "", "write the evaluation as a Markdown document to this path (skips the text report)")
	metricsOut := flag.String("metrics", "", `write a final pipeline-metrics snapshot as JSON to this file ("-" = stdout)`)
	metricsEvery := flag.Duration("metrics-interval", 0, "periodically dump metrics to stderr at this interval (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 1 {
		log.Fatalf("-workers must be at least 1, got %d", *workers)
	}
	if *archiveIn != "" && *archiveOut != "" {
		log.Fatal("-archive (read) and -archive-out (write) are mutually exclusive")
	}

	if *pprofAddr != "" {
		if err := obs.StartPprof(*pprofAddr); err != nil {
			log.Fatal(err)
		}
	}
	// One registry spans the whole decade: per-year pipelines aggregate into
	// it (each YearData additionally keeps its own snapshot). Nil when no
	// metrics sink was requested, which disables all instrumentation.
	var reg *obs.Registry
	if *metricsOut != "" || *metricsEvery > 0 {
		reg = obs.NewRegistry()
	}
	defer obs.StartDump(reg, os.Stderr, *metricsEvery)()
	cc := analysis.CollectConfig{Workers: *workers, Metrics: reg}
	dumpMetrics := func() {
		if *metricsOut == "" {
			return
		}
		if err := obs.WriteSnapshotFile(reg.Snapshot(), *metricsOut); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut != "" || *csvDir != "" || *mdOut != "" {
		if *archiveIn != "" || *archiveOut != "" {
			log.Fatal("-archive/-archive-out are not supported with -json/-csv/-markdown (the full evaluation needs the raw probe stream)")
		}
		log.Printf("computing full evaluation (seed %d, scale %g, telescope %d)...", *seed, *scale, *telSize)
		ev, err := analysis.FullEvaluationWith(*seed, *scale, *telSize, cc)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := ev.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *jsonOut)
		}
		if *csvDir != "" {
			if err := ev.WriteCSVDir(*csvDir); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote CSV series into %s", *csvDir)
		}
		if *mdOut != "" {
			f, err := os.Create(*mdOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			report.Markdown(f, ev)
			log.Printf("wrote %s", *mdOut)
		}
		dumpMetrics()
		return
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[strings.ToLower(k)] = true
		}
	}

	// The archive stores detected campaigns, not raw probes, so archive mode
	// serves exactly the scan-level experiments; everything else needs a
	// simulation or capture replay.
	scanLevel := map[string]bool{
		"zmapdaily": true, "fig6": true, "fig7": true,
		"sec52": true, "sec63": true, "sec64": true, "collab": true,
	}
	if *archiveIn != "" {
		if len(want) == 0 {
			want = scanLevel
		}
		for k := range want {
			if !scanLevel[k] {
				names := make([]string, 0, len(scanLevel))
				for s := range scanLevel {
					names = append(names, s)
				}
				sort.Strings(names)
				log.Fatalf("experiment %q needs the raw probe stream; -archive mode supports: %s",
					k, strings.Join(names, ","))
			}
		}
	}
	enabled := func(k string) bool { return len(want) == 0 || want[k] }

	needDecade := *archiveOut != ""
	for _, k := range []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"sec51", "sec52", "sec54", "sec63", "sec64", "bias", "blockable", "collab", "zmapdaily"} {
		if enabled(k) {
			needDecade = true
		}
	}

	var years []*analysis.YearData
	switch {
	case *archiveIn != "":
		rd, err := archive.Open(*archiveIn)
		if err != nil {
			log.Fatal(err)
		}
		defer rd.Close()
		rd.SetMetrics(reg)
		log.Printf("loading campaigns from %s (%d blocks, %d scans, telescope %d)...",
			*archiveIn, rd.NumBlocks(), rd.NumScans(), rd.TelescopeSize())
		years, err = analysis.CollectArchiveYears(rd)
		if err != nil {
			log.Fatal(err)
		}
	case needDecade:
		log.Printf("simulating 2015-2024 (seed %d, scale %g, telescope %d)...", *seed, *scale, *telSize)
		var err error
		years, err = analysis.DecadeWith(*seed, *scale, *telSize, cc)
		if err != nil {
			log.Fatal(err)
		}
		if *archiveOut != "" {
			w, err := archive.Create(*archiveOut, archive.WriterConfig{
				TelescopeSize: *telSize, Origins: true, Metrics: reg,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, yd := range years {
				if err := analysis.ArchiveYear(w, yd); err != nil {
					log.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("archived %d years of campaigns to %s", len(years), *archiveOut)
		}
	}
	byYear := map[int]*analysis.YearData{}
	for _, yd := range years {
		byYear[yd.Year] = yd
	}
	// mustYear guards experiments pinned to one calibration year: an archive
	// may not contain it.
	mustYear := func(y int) *analysis.YearData {
		yd := byYear[y]
		if yd == nil {
			log.Fatalf("no campaigns for year %d in %s", y, *archiveIn)
		}
		return yd
	}
	out := os.Stdout

	if enabled("table1") {
		section(out, "Table 1 — scan volume, top ports, tools (2015-2024)")
		report.Table1(out, analysis.Table1(years, 5))
	}

	if enabled("table2") {
		section(out, "Table 2 — scanner types (sources / scans / packets)")
		report.Table2(out, analysis.Table2(years))
	}

	if enabled("fig1") {
		section(out, "Figure 1 — post-disclosure surge and decay (2019, synthetic CVE on port 9898)")
		ev := workload.Disclosure{Day: 12, Port: 9898, PeakPerDay: 60000, DecayDays: 4}
		res, err := analysis.Figure1(*seed, *scale, *telSize, 2019, ev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "peak: day %d at %.1fx the pre-event baseline\n", res.PeakDay, res.PeakFactor)
		fmt.Fprintf(out, "KS(before vs final 2 weeks): D=%.3f p=%.3f same-distribution=%v\n",
			res.KS.D, res.KS.P, res.KS.SameDistribution(0.05))
		fmt.Fprintln(out, "relative activity by day:")
		for d, v := range res.RelativeActivity {
			if d%3 == 0 {
				fmt.Fprintf(out, "  day %2d: %6.2fx\n", d, v)
			}
		}
	}

	if enabled("zmapdaily") {
		section(out, "§4.1 — ZMap campaigns per day (2023 vs 2024)")
		t := report.NewTable("year", "min/day", "mean/day", "max/day")
		for _, y := range []int{2023, 2024} {
			r := analysis.ZMapDaily(mustYear(y))
			t.AddRow(fmt.Sprint(y), fmt.Sprint(r.Min), fmt.Sprintf("%.1f", r.Mean), fmt.Sprint(r.Max))
		}
		t.WriteTo(out)
		fmt.Fprintln(out, "(paper: min 17,122/day in 2024 vs max 9,051/day in 2023)")
	}

	if enabled("fig2") {
		section(out, "Figure 2 — weekly change per /16 netblock (2020)")
		res := analysis.Figure2(mustYear(2020))
		fmt.Fprintf(out, "blocks changing >=2x week-over-week: sources %s, scans %s, packets %s\n",
			report.Pct(res.SourcesTwofold), report.Pct(res.ScansTwofold), report.Pct(res.PacketsTwofold))
		fmt.Fprintf(out, "stable blocks (<1.25x): %s\n", report.Pct(res.Stable))
		report.CDF(out, "packet change factor", stats.NewECDF(res.PacketRatios))
	}

	if enabled("fig3") {
		section(out, "Figure 3 — distinct ports per source")
		t := report.NewTable("year", "1 port", ">=3 ports", ">=5 ports")
		for _, yd := range years {
			f := analysis.Figure3(yd)
			t.AddRow(fmt.Sprint(f.Year), report.Pct(f.SinglePortShare),
				report.Pct(f.ThreePlusShare), report.Pct(f.FivePlusShare))
		}
		t.WriteTo(out)
	}

	if enabled("fig4") {
		for _, y := range []int{2017, 2020, 2022} {
			section(out, fmt.Sprintf("Figure 4 — top-10 ports and tool mix (%d)", y))
			report.Figure4(out, y, analysis.Figure4(mustYear(y), 10))
		}
	}

	if enabled("fig5") {
		section(out, "Figure 5 — scanner types over top-15 ports (2022)")
		report.Figure5(out, analysis.Figure5(mustYear(2022), 15))
	}

	if enabled("fig6") {
		section(out, "Figure 6 — scanner recurrence and downtime (2022)")
		res := analysis.Figure6([]*analysis.YearData{mustYear(2022)})
		t := report.NewTable("scanner type", "sources", "mean scans/source", "daily-mode share")
		for _, typ := range inetmodel.ScannerTypes {
			ss := res.ScansPerSource[typ]
			if len(ss) == 0 {
				continue
			}
			t.AddRow(typ.String(), fmt.Sprint(len(ss)),
				fmt.Sprintf("%.2f", stats.Mean(ss)),
				report.Pct(res.DailyModeShare[typ]))
		}
		t.WriteTo(out)
	}

	if enabled("fig7") {
		section(out, "Figure 7 — speed and coverage per scanner type (2022)")
		report.Figure7(out, analysis.Figure7(mustYear(2022)))
	}

	if enabled("fig8") {
		section(out, "Figure 8 — institutional port coverage (2024)")
		s, err := workload.NewScenario(workload.Config{
			Year: 2024, Seed: *seed, Scale: *scale, TelescopeSize: *telSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		report.Figure8(out, analysis.Figure8(s))
	}

	if enabled("fig9") || enabled("fig10") {
		section(out, "Figures 9/10 — institutional port coverage, 2023 vs 2024")
		reg := inetmodel.BuildRegistry(*seed)
		rows, err := analysis.Figure910(*seed, *scale, *telSize, reg)
		if err != nil {
			log.Fatal(err)
		}
		report.Figure910(out, rows)
	}

	if enabled("sec51") {
		section(out, "§5.1 — port-space coverage and alias co-scanning")
		svc := inetmodel.NewServiceModel(*seed)
		t := report.NewTable("year", "privileged coverage", "80&8080 co-scan", ">=3 ports", "services/scans R")
		var all []*analysis.Sec51Result
		for _, yd := range years {
			r := analysis.Sec51(yd, svc, *seed)
			all = append(all, r)
			t.AddRow(fmt.Sprint(r.Year), report.Pct(r.PrivilegedCoverage),
				report.Pct(r.CoScan80_8080), report.Pct(r.ThreePlusShare),
				fmt.Sprintf("%.3f", r.ServicesScansR.R))
		}
		t.WriteTo(out)
		if trend, err := analysis.ThreePlusTrend(all); err == nil {
			fmt.Fprintf(out, ">=3-port trend across years: R=%.3f p=%.4f (paper: R=0.88, p<0.05)\n", trend.R, trend.P)
		}
	}

	if enabled("sec52") {
		section(out, "§5.2 — vertical scans")
		t := report.NewTable("year", ">100 ports", ">1000 ports", ">10000 ports", "largest", "speed>1000p (Mbps)", "speed all (Mbps)")
		for _, yd := range years {
			r := analysis.Sec52(yd)
			t.AddRow(fmt.Sprint(r.Year), fmt.Sprint(r.Over100), fmt.Sprint(r.Over1000),
				fmt.Sprint(r.Over10000), fmt.Sprint(r.LargestPortCount),
				fmt.Sprintf("%.1f", r.MeanSpeedOver1000Mbps),
				fmt.Sprintf("%.1f", r.MeanSpeedAllMbps))
		}
		t.WriteTo(out)
	}

	if enabled("sec63") {
		section(out, "§6.3 — scanning speed by tool (median extrapolated pps)")
		t := report.NewTable("year", "zmap", "masscan", "nmap", "mirai", "custom", "top-100 mean")
		var all []*analysis.Sec63Result
		for _, yd := range years {
			r := analysis.Sec63(yd)
			all = append(all, r)
			t.AddRow(fmt.Sprint(r.Year),
				report.Count(r.MedianPPS[tools.ToolZMap]),
				report.Count(r.MedianPPS[tools.ToolMasscan]),
				report.Count(r.MedianPPS[tools.ToolNMap]),
				report.Count(r.MedianPPS[tools.ToolMirai]),
				report.Count(r.MedianPPS[tools.ToolCustom]),
				report.Count(r.Top100MeanPPS))
		}
		t.WriteTo(out)
		if trend, err := analysis.Top100Trend(all); err == nil {
			fmt.Fprintf(out, "top-100 speed trend: R=%.3f p=%.4f (paper: R=0.356, p<0.001)\n", trend.R, trend.P)
		}
		if yd := byYear[2020]; yd != nil {
			if sp, err := analysis.SpeedPortsCorrelation(yd); err == nil {
				fmt.Fprintf(out, "speed vs ports targeted (2020): R=%.3f p=%.4f (paper §5.3: positive, R=0.88 aggregated)\n", sp.R, sp.P)
			}
		}
	}

	if enabled("sec54") {
		section(out, "§5.4 — origin-country structure")
		t := report.NewTable("year", "top origins", "CN-dominated ports", "US", "443 lead", "3389 lead")
		for _, yd := range years {
			r := analysis.Sec54(yd)
			tops := ""
			for i, cs := range r.TopCountries {
				if i >= 3 {
					break
				}
				if i > 0 {
					tops += " "
				}
				tops += fmt.Sprintf("%s(%.0f%%)", cs.Country, cs.Share*100)
			}
			lead := func(port uint16) string {
				if o := r.PortOrigins[port]; len(o) > 0 {
					return fmt.Sprintf("%s(%.0f%%)", o[0].Country, o[0].Share*100)
				}
				return "-"
			}
			t.AddRow(fmt.Sprint(r.Year), tops,
				fmt.Sprint(r.DominatedPorts["CN"]), fmt.Sprint(r.DominatedPorts["US"]),
				lead(443), lead(3389))
		}
		t.WriteTo(out)
	}

	if enabled("bias") {
		section(out, "§7 — benign-scanner measurement bias")
		t := report.NewTable("year", "institutional packet share", "top-5 set changes when filtered")
		for _, yd := range years {
			r := analysis.InstitutionalBias(yd, 5)
			t.AddRow(fmt.Sprint(r.Year), report.Pct(r.InstPacketShare), fmt.Sprint(r.RankingChanged))
		}
		t.WriteTo(out)
	}

	if enabled("blockable") {
		section(out, "§7 — traffic blockable via tool fingerprints")
		t := report.NewTable("year", "identifiable share", "zmap", "masscan", "mirai")
		for _, yd := range years {
			r := analysis.Blockable(yd)
			t.AddRow(fmt.Sprint(r.Year), report.Pct(r.Share),
				report.Pct(r.PerTool[tools.ToolZMap]),
				report.Pct(r.PerTool[tools.ToolMasscan]),
				report.Pct(r.PerTool[tools.ToolMirai]))
		}
		t.WriteTo(out)
	}

	if enabled("blocklist") {
		section(out, "§4.4/§6.6 — blocklist staleness (2022)")
		s, err := workload.NewScenario(workload.Config{
			Year: 2022, Seed: *seed, Scale: *scale, TelescopeSize: *telSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := analysis.BlocklistDecay(s)
		t := report.NewTable("list age (weeks)", "all traffic covered", "institutional covered")
		for k := 0; k < r.Weeks; k++ {
			t.AddRow(fmt.Sprint(k), report.Pct(r.HitRate[k]), report.Pct(r.InstHitRate[k]))
		}
		t.WriteTo(out)
	}

	if enabled("collab") {
		section(out, "§4.1/§6.4 — collaborative scan reconstruction")
		t := report.NewTable("year", "raw scans", "logical scans", "collaborative", "largest group", "inflation")
		for _, yd := range years {
			st := collab.Summarize(collab.Detect(yd.QualifiedScans(), collab.Config{}))
			t.AddRow(fmt.Sprint(yd.Year), fmt.Sprint(st.RawScans), fmt.Sprint(st.LogicalScans),
				fmt.Sprint(st.Collaborative), fmt.Sprint(st.LargestGroup),
				fmt.Sprintf("%.2fx", st.InflationFactor))
		}
		t.WriteTo(out)
	}

	if enabled("vantage") {
		section(out, "§7 — vantage-point comparison (2022, two telescopes)")
		r, err := analysis.CompareVantage(2022, *seed, *scale, *telSize, *seed+100, *seed+200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "packet ratio %.3f, scan ratio %.3f, top-10 port overlap %s\n",
			r.PacketRatio, r.ScanRatio, report.Pct(r.TopPortOverlap))
		fmt.Fprintf(out, "speed distributions: KS D=%.3f p=%.3f same=%v\n",
			r.SpeedKS.D, r.SpeedKS.P, r.SpeedKS.SameDistribution(0.05))
	}

	if enabled("sec64") {
		section(out, "§6.4 — ZMap coverage distribution and sharding modes (2024)")
		r := analysis.Sec64(mustYear(2024), tools.ToolZMap)
		fmt.Fprintf(out, "zmap campaigns: %d, full-IPv4 share: %s, mode at %.1f%% coverage (%d campaigns)\n",
			len(r.Coverages), report.Pct(r.FullIPv4Share), r.ModeCoverage*100, r.ModeCount)
		report.CDF(out, "zmap coverage", stats.NewECDF(r.Coverages))
	}

	dumpMetrics()
}

func section(w *os.File, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
