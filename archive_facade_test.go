package synscan

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFacadeArchiveSkipCorrupt: the degraded-mode surface works end to end
// through the public wrappers — a corrupted archive fails a default reader
// but streams its intact blocks under WithSkipCorrupt, counting the damage.
func TestFacadeArchiveSkipCorrupt(t *testing.T) {
	yd, _ := facadeData(t)
	path := filepath.Join(t.TempDir(), "facade.syna")
	w, err := CreateArchive(path, ArchiveWriterConfig{
		TelescopeSize: 2048, Origins: true, BlockBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ArchiveYear(w, yd); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	probe, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	zones := probe.Blocks()
	probe.Close()
	if len(zones) < 2 {
		t.Fatalf("archive has %d blocks; need at least 2 to lose one and keep reading", len(zones))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first block's compressed payload (past its
	// 4-byte checksum).
	data[int(zones[0].Offset)+4+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	strict, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if err := strict.Scans(ArchiveFilter{}, func(*Scan, Origin) {}); err == nil {
		t.Fatal("default reader must fail on a corrupt block")
	}

	rd, err := OpenArchive(path, WithSkipCorrupt())
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	n := 0
	if err := rd.Scans(ArchiveFilter{}, func(*Scan, Origin) { n++ }); err != nil {
		t.Fatalf("skip-corrupt reader errored: %v", err)
	}
	if rd.CorruptBlocks() != 1 {
		t.Fatalf("CorruptBlocks() = %d, want 1", rd.CorruptBlocks())
	}
	if n == 0 || uint64(n) >= rd.NumScans() {
		t.Fatalf("recovered %d of %d scans; want the intact blocks only", n, rd.NumScans())
	}
}
